// Package exp is the benchmark harness that regenerates every figure and
// table of the paper's evaluation (Section 5): Figure 4 (jw-parallel GFLOPS
// vs N), Figure 5 (all four plans vs N), Table 1 (CPU vs GPU running time
// over 100 steps), Table 2 (total time of the four GPU plans) and Table 3
// (kernel-only running time of the four GPU plans) — plus the ablations
// DESIGN.md calls out.
//
// All times are the simulator's modelled times for the paper's hardware (an
// AMD Radeon HD 5850 and a Pentium 4 3.0 GHz host); kernels really execute
// and their outputs are validated elsewhere, so the harness measures real
// counted work priced by a calibrated cost model. EXPERIMENTS.md records
// paper-vs-measured for every row.
package exp

import (
	"fmt"
	"io"

	"repro/internal/bh"
	"repro/internal/body"
	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/ic"
	"repro/internal/obs"
	"repro/internal/pp"
)

// Config parameterises a sweep.
type Config struct {
	// Sizes is the body-count sweep (ascending).
	Sizes []int
	// Steps is the simulated step count the paper's tables use (100).
	Steps int
	// Seed makes the workloads reproducible.
	Seed uint64
	// Theta and Eps configure the treecode; G is fixed at 1.
	Theta, Eps float32
	// Device is the modelled GPU; CPU and Host the modelled paper-era CPU.
	Device gpusim.DeviceConfig
	CPU    gpusim.CPUModel
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer
	// Obs, when non-nil, is wired into every plan: the sweep feeds the
	// metrics registry (kernel-ms, transfer bytes, walk statistics, ...) and
	// the tracer, so a run can end with a machine-readable snapshot.
	Obs *obs.Obs
}

// DefaultConfig returns the paper's configuration: N from 1K to 64K over
// 100 steps on the HD 5850 model.
func DefaultConfig() Config {
	return Config{
		Sizes:  []int{1024, 2048, 4096, 8192, 16384, 32768, 65536},
		Steps:  100,
		Seed:   20110511, // the paper's publication year/month/day
		Theta:  0.6,
		Eps:    0.05,
		Device: gpusim.HD5850(),
		CPU:    gpusim.PaperCPU(),
	}
}

// QuickConfig returns a reduced sweep for tests and smoke runs.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Sizes = []int{512, 1024, 2048, 4096}
	c.Steps = 10
	return c
}

func (c Config) ppParams() pp.Params { return pp.Params{G: 1, Eps: c.Eps} }

func (c Config) bhOptions() bh.Options {
	o := bh.DefaultOptions()
	o.Theta = c.Theta
	o.Eps = c.Eps
	return o
}

func (c Config) workload(n int) *body.System { return ic.Plummer(n, c.Seed) }

func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format, args...)
	}
}

// PlanNames lists the four plans in the paper's presentation order.
var PlanNames = []string{"i-parallel", "j-parallel", "w-parallel", "jw-parallel"}

// Point is one (plan, N) measurement: a single force evaluation, which the
// tables scale by Config.Steps (one force evaluation per leapfrog step).
type Point struct {
	Plan         string
	N            int
	Interactions int64
	Flops        int64

	KernelSeconds   float64
	TransferSeconds float64
	HostSeconds     float64

	// KernelGFLOPS is the plan's own useful flops over kernel time (the
	// paper's figure metric).
	KernelGFLOPS float64
	// EffectiveGFLOPS normalises by the jw-parallel flop count at the same
	// N: useful work per second on the *same physical problem*, which is
	// the fair cross-algorithm comparison (a PP plan does N^2 work where
	// the treecode does far less).
	EffectiveGFLOPS float64

	// Launch keeps the device-level detail for PTPM reports.
	Launch *gpusim.Result
}

// TotalSeconds is the full per-evaluation pipeline time.
func (p Point) TotalSeconds() float64 {
	return p.KernelSeconds + p.TransferSeconds + p.HostSeconds
}

// Sweep holds every plan's points over the configured sizes.
type Sweep struct {
	Config Config
	// Points[plan][k] corresponds to Config.Sizes[k].
	Points map[string][]Point
}

// newPlans constructs the four plans, each on a fresh device context.
func (c Config) newPlans() (map[string]core.Plan, error) {
	plans := make(map[string]core.Plan, 4)
	for _, name := range PlanNames {
		ctx, err := cl.NewContext(c.Device)
		if err != nil {
			return nil, err
		}
		plan, err := core.NewPlanByName(name,
			core.WithCLContext(ctx),
			core.WithPPParams(c.ppParams()),
			core.WithBHOptions(c.bhOptions()),
			core.WithObs(c.Obs))
		if err != nil {
			return nil, err
		}
		plans[name] = plan
	}
	return plans, nil
}

// RunSweep evaluates every plan at every size once. Figures and tables are
// rendered from the same sweep so one invocation regenerates the whole
// evaluation consistently.
func RunSweep(cfg Config) (*Sweep, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("exp: empty size sweep")
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("exp: non-positive step count %d", cfg.Steps)
	}
	plans, err := cfg.newPlans()
	if err != nil {
		return nil, err
	}
	sw := &Sweep{Config: cfg, Points: make(map[string][]Point)}
	for _, n := range cfg.Sizes {
		sys := cfg.workload(n)
		var jwFlops int64
		// jw-parallel last in execution order would break effective-GFLOPS
		// accounting, so run it first at each size.
		order := []string{"jw-parallel", "i-parallel", "j-parallel", "w-parallel"}
		pts := make(map[string]Point, 4)
		for _, name := range order {
			prof, err := plans[name].Accel(sys.Clone())
			if err != nil {
				return nil, fmt.Errorf("exp: %s at N=%d: %w", name, n, err)
			}
			pt := Point{
				Plan:            name,
				N:               n,
				Interactions:    prof.Interactions,
				Flops:           prof.Flops,
				KernelSeconds:   prof.Profile.KernelSeconds,
				TransferSeconds: prof.Profile.TransferSeconds,
				HostSeconds:     prof.Profile.HostSeconds,
				KernelGFLOPS:    prof.KernelGFLOPS(),
			}
			if len(prof.Launches) > 0 {
				pt.Launch = prof.Launches[0]
			}
			if name == "jw-parallel" {
				jwFlops = prof.Flops
			}
			pt.EffectiveGFLOPS = float64(jwFlops) / pt.KernelSeconds / 1e9
			pts[name] = pt
			cfg.progressf("  %-12s N=%-7d kernel=%-12s %.1f GFLOPS\n",
				name, n, fmtSecs(pt.KernelSeconds), pt.KernelGFLOPS)
		}
		for _, name := range PlanNames {
			sw.Points[name] = append(sw.Points[name], pts[name])
		}
	}
	return sw, nil
}

func fmtSecs(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.1fus", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
