package exp

import (
	"encoding/json"
	"io"

	"repro/internal/gpusim"
)

// SweepSchemaVersion identifies the sweep-export JSON layout. Bump on
// breaking changes so downstream consumers can refuse mismatched documents.
// Version 2 added schema_version itself and the full device_model block.
const SweepSchemaVersion = 2

// sweepJSON is the export schema: self-describing enough for downstream
// plotting without this repository's code.
type sweepJSON struct {
	SchemaVersion int    `json:"schema_version"`
	Device        string `json:"device"`
	// DeviceModel embeds the full cost-model parameters the sweep ran
	// against: two documents are only comparable when these match.
	DeviceModel gpusim.DeviceConfig    `json:"device_model"`
	Steps       int                    `json:"steps"`
	Theta       float32                `json:"theta"`
	Eps         float32                `json:"eps"`
	Seed        uint64                 `json:"seed"`
	Sizes       []int                  `json:"sizes"`
	Plans       map[string][]pointJSON `json:"plans"`
	// Results flattens the sweep to one record per (plan, N) experiment —
	// the shape benchmark dashboards and regression checks consume directly.
	Results []resultJSON `json:"results"`
}

// resultJSON is one experiment in the flat listing.
type resultJSON struct {
	Plan     string  `json:"plan"`
	N        int     `json:"n"`
	KernelMS float64 `json:"kernelMs"`
	TotalMS  float64 `json:"totalMs"`
	GFLOPS   float64 `json:"gflops"`
}

type pointJSON struct {
	N               int     `json:"n"`
	Interactions    int64   `json:"interactions"`
	Flops           int64   `json:"flops"`
	KernelSeconds   float64 `json:"kernelSeconds"`
	TransferSeconds float64 `json:"transferSeconds"`
	HostSeconds     float64 `json:"hostSeconds"`
	KernelGFLOPS    float64 `json:"kernelGflops"`
	EffectiveGFLOPS float64 `json:"effectiveGflops"`
}

// WriteJSON exports the sweep (the data behind every figure and table) as
// indented JSON, so external tools can re-plot the evaluation without
// parsing ASCII tables.
func (sw *Sweep) WriteJSON(w io.Writer) error {
	doc := sweepJSON{
		SchemaVersion: SweepSchemaVersion,
		Device:        sw.Config.Device.Name,
		DeviceModel:   sw.Config.Device,
		Steps:         sw.Config.Steps,
		Theta:         sw.Config.Theta,
		Eps:           sw.Config.Eps,
		Seed:          sw.Config.Seed,
		Sizes:         sw.Config.Sizes,
		Plans:         map[string][]pointJSON{},
	}
	for name, pts := range sw.Points {
		out := make([]pointJSON, len(pts))
		for i, pt := range pts {
			out[i] = pointJSON{
				N:               pt.N,
				Interactions:    pt.Interactions,
				Flops:           pt.Flops,
				KernelSeconds:   pt.KernelSeconds,
				TransferSeconds: pt.TransferSeconds,
				HostSeconds:     pt.HostSeconds,
				KernelGFLOPS:    pt.KernelGFLOPS,
				EffectiveGFLOPS: pt.EffectiveGFLOPS,
			}
		}
		doc.Plans[name] = out
	}
	// Flat listing in the paper's presentation order, sizes ascending.
	for _, name := range PlanNames {
		for _, pt := range sw.Points[name] {
			doc.Results = append(doc.Results, resultJSON{
				Plan:     pt.Plan,
				N:        pt.N,
				KernelMS: pt.KernelSeconds * 1e3,
				TotalMS:  pt.TotalSeconds() * 1e3,
				GFLOPS:   pt.KernelGFLOPS,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
