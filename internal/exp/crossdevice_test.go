package exp

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestCrossDevice checks the portability story the PTPM predicts: the
// bigger VLIW part is proportionally faster, the scalar SIMT part achieves
// far higher efficiency (easier issue slots) despite lower peak, and the
// multi-GPU extension scales.
func TestCrossDevice(t *testing.T) {
	out, err := CrossDevice(QuickConfig(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HD 5850", "HD 5870", "GTX 280", "multi-GPU"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 8 {
		t.Fatalf("unexpected table:\n%s", out)
	}
	// Parse the GFLOPS column (4th from the end is device... use fields:
	// last is efficiency, second-to-last GFLOPS).
	gf := func(line string) float64 {
		f := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscan(f[len(f)-2], &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	hd5850 := gf(lines[3])
	hd5870 := gf(lines[4])
	dual := gf(lines[6])
	if hd5870 <= hd5850 {
		t.Errorf("HD 5870 (%g) not faster than HD 5850 (%g)", hd5870, hd5850)
	}
	if dual < 1.5*hd5850 {
		t.Errorf("dual-GPU (%g) not scaling over single (%g)", dual, hd5850)
	}
	// Efficiency contrast: SIMT part should report a higher percentage.
	if !strings.Contains(lines[5], "%") {
		t.Errorf("no efficiency column: %s", lines[5])
	}
}

func TestAlgorithms(t *testing.T) {
	out, err := Algorithms(QuickConfig(), []int{1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PP (direct)", "Barnes-Hut", "FMM", "exact"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// The table should show PP's interaction count strictly above BH's and
	// BH's above FMM's at N=4096 (count the commas as a cheap proxy is too
	// fragile; parse the rows).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var counts []float64
	for _, ln := range lines {
		if strings.Contains(ln, "4096") || (len(counts) > 0 && len(counts) < 3 &&
			(strings.Contains(ln, "Barnes-Hut") || strings.Contains(ln, "FMM"))) {
			f := strings.Fields(ln)
			for i, tok := range f {
				if tok == "(direct)" || tok == "Barnes-Hut" || tok == "(dual-tree)" {
					v := strings.ReplaceAll(f[i+1], ",", "")
					var x float64
					if _, err := fmt.Sscan(v, &x); err == nil {
						counts = append(counts, x)
					}
					break
				}
			}
		}
	}
	if len(counts) != 3 {
		t.Fatalf("parsed %d counts from:\n%s", len(counts), out)
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Errorf("interaction ordering PP > BH > FMM violated: %v", counts)
	}
}

func TestQuadrupoleSweep(t *testing.T) {
	out, err := QuadrupoleSweep(QuickConfig(), 2048, []float32{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "quad gain") {
		t.Fatalf("bad table:\n%s", out)
	}
	// Every row's quadrupole error must beat the monopole error (gain > 1).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for _, ln := range lines[3:] { // title, header, separator
		f := strings.Fields(ln)
		gain := f[len(f)-1]
		var g float64
		if _, err := fmt.Sscan(strings.TrimSuffix(gain, "x"), &g); err != nil {
			t.Fatalf("parse gain %q: %v", gain, err)
		}
		if g <= 1 {
			t.Errorf("quadrupole gain %g not above 1 in row %q", g, ln)
		}
	}
}

func TestWorkloadSensitivity(t *testing.T) {
	out, err := WorkloadSensitivity(QuickConfig(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plummer", "cube", "disk", "collision"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestSweepWriteJSON(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sizes = []int{512}
	sw, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := sw.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	plans, ok := doc["plans"].(map[string]any)
	if !ok || len(plans) != 4 {
		t.Fatalf("plans missing: %v", doc["plans"])
	}
	for _, name := range PlanNames {
		if _, ok := plans[name]; !ok {
			t.Errorf("plan %s missing from JSON", name)
		}
	}
	if doc["device"] == "" || doc["steps"] == float64(0) {
		t.Error("metadata missing")
	}
	if doc["schema_version"] != float64(SweepSchemaVersion) {
		t.Errorf("schema_version = %v, want %d", doc["schema_version"], SweepSchemaVersion)
	}
	dm, ok := doc["device_model"].(map[string]any)
	if !ok {
		t.Fatalf("device_model missing: %v", doc["device_model"])
	}
	// The full cost-model parameters must ride along so two documents can
	// be judged comparable without this repo's source.
	if dm["Name"] != cfg.Device.Name {
		t.Errorf("device_model name = %v, want %s", dm["Name"], cfg.Device.Name)
	}
	if dm["ComputeUnits"] != float64(cfg.Device.ComputeUnits) ||
		dm["ClockHz"] != cfg.Device.ClockHz {
		t.Errorf("device_model params missing: %v", dm)
	}
}
