package exp

import (
	"fmt"

	"repro/internal/bh"
	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/pp"
	"repro/internal/table"
)

// ThetaSweep quantifies the treecode's accuracy/time trade-off: for each
// opening angle it reports the jw-parallel kernel time, the interaction
// count and the RMS relative force error against the exact direct sum. The
// paper fixes theta; this sweep documents what that choice buys.
func ThetaSweep(cfg Config, n int, thetas []float32) (string, error) {
	sys := cfg.workload(n)
	exact := sys.Clone()
	pp.Scalar(exact, cfg.ppParams())

	t := table.New(
		fmt.Sprintf("Ablation — opening angle theta (jw-parallel, N=%d)", n),
		"theta", "interactions", "kernel time", "GFLOPS", "RMS force err")
	for _, theta := range thetas {
		ctx, err := cl.NewContext(cfg.Device)
		if err != nil {
			return "", err
		}
		opt := cfg.bhOptions()
		opt.Theta = theta
		plan, err := core.NewPlanByName("jw-parallel",
			core.WithCLContext(ctx), core.WithBHOptions(opt))
		if err != nil {
			return "", err
		}
		got := sys.Clone()
		prof, err := plan.Accel(got)
		if err != nil {
			return "", fmt.Errorf("exp: theta %g: %w", theta, err)
		}
		t.AddRow(
			fmt.Sprintf("%.2f", theta),
			table.Count(prof.Interactions),
			table.Seconds(prof.Profile.KernelSeconds),
			table.GFLOPS(prof.KernelGFLOPS()),
			fmt.Sprintf("%.2e", pp.RMSRelError(exact.Acc, got.Acc, 1e-3)),
		)
	}
	return t.String(), nil
}

// GroupCapSweep varies the jw-parallel walk size (bodies per group): small
// walks keep lists short but waste lanes; large walks fill lanes but
// lengthen every list. The paper's design picks the middle of this curve.
func GroupCapSweep(cfg Config, n int, caps []int) (string, error) {
	sys := cfg.workload(n)
	t := table.New(
		fmt.Sprintf("Ablation — jw-parallel walk size (GroupCap, N=%d)", n),
		"groupCap", "walks", "mean list", "interactions", "kernel time", "GFLOPS")
	for _, gc := range caps {
		ctx, err := cl.NewContext(cfg.Device)
		if err != nil {
			return "", err
		}
		plan, err := core.NewPlanByName("jw-parallel",
			core.WithCLContext(ctx),
			core.WithBHOptions(cfg.bhOptions()),
			core.WithTuning(gc, 0, 0))
		if err != nil {
			return "", err
		}
		prof, err := plan.Accel(sys.Clone())
		if err != nil {
			return "", fmt.Errorf("exp: groupCap %d: %w", gc, err)
		}

		// Recompute the walk statistics the plan used.
		opt := cfg.bhOptions()
		if opt.LeafCap > gc {
			opt.LeafCap = gc
		}
		tree, err := bh.Build(sys.Clone(), opt)
		if err != nil {
			return "", err
		}
		ws, err := tree.BuildWalks(gc)
		if err != nil {
			return "", err
		}
		_, _, meanList, _ := ws.ListStats()

		t.AddRow(
			fmt.Sprint(gc),
			fmt.Sprint(len(ws.Walks)),
			fmt.Sprintf("%.0f", meanList),
			table.Count(prof.Interactions),
			table.Seconds(prof.Profile.KernelSeconds),
			table.GFLOPS(prof.KernelGFLOPS()),
		)
	}
	return t.String(), nil
}

// StagingAblation disables jw-parallel's local-memory staging (reverting
// its list handling to w-parallel's per-lane streaming, while keeping the
// queueing) to show where the speedup comes from.
func StagingAblation(cfg Config, sizes []int) (string, error) {
	t := table.New("Ablation — jw-parallel local-memory staging",
		"N", "staged kernel", "unstaged kernel", "staging gain")
	for _, n := range sizes {
		sys := cfg.workload(n)
		var secs [2]float64
		for i, disable := range []bool{false, true} {
			ctx, err := cl.NewContext(cfg.Device)
			if err != nil {
				return "", err
			}
			p, err := core.NewPlanByName("jw-parallel",
				core.WithCLContext(ctx), core.WithBHOptions(cfg.bhOptions()))
			if err != nil {
				return "", err
			}
			plan := p.(*core.JWParallel)
			plan.DisableLDSStaging = disable
			prof, err := plan.Accel(sys.Clone())
			if err != nil {
				return "", err
			}
			secs[i] = prof.Profile.KernelSeconds
		}
		t.AddRow(
			fmt.Sprint(n),
			table.Seconds(secs[0]),
			table.Seconds(secs[1]),
			fmt.Sprintf("%.1fx", secs[1]/secs[0]),
		)
	}
	return t.String(), nil
}

// OccupancyAblation reruns i-parallel and w-parallel with the cost model's
// latency hiding disabled (occupancy factors pinned to 1). For i-parallel
// the columns coincide — its 4-wavefront groups always hide the shallow ALU
// pipeline, so the small-N cliff is *pure compute-unit starvation*, the part
// the PTPM attributes to too few work-groups on the space axis. For the
// memory-bound w-parallel, single-wavefront groups cannot hide memory
// latency at small N, and removing that penalty shows how much of its
// deficit is occupancy rather than traffic.
func OccupancyAblation(cfg Config, sizes []int) (string, error) {
	t := table.New("Ablation — latency-hiding occupancy (GFLOPS with / without the penalty)",
		"N", "i-par full", "i-par no-penalty", "w-par full", "w-par no-penalty")
	for _, n := range sizes {
		sys := cfg.workload(n)
		var cells []string
		cells = append(cells, fmt.Sprint(n))
		for _, planName := range []string{"i-parallel", "w-parallel"} {
			for _, noHide := range []bool{false, true} {
				dev := cfg.Device
				if noHide {
					dev.HideWavefronts = 1
					dev.ALUHideWavefronts = 1
				}
				ctx, err := cl.NewContext(dev)
				if err != nil {
					return "", err
				}
				plan, err := core.NewPlanByName(planName,
					core.WithCLContext(ctx),
					core.WithPPParams(cfg.ppParams()),
					core.WithBHOptions(cfg.bhOptions()))
				if err != nil {
					return "", err
				}
				prof, err := plan.Accel(sys.Clone())
				if err != nil {
					return "", err
				}
				cells = append(cells, table.GFLOPS(prof.KernelGFLOPS()))
			}
		}
		t.AddRow(cells...)
	}
	return t.String(), nil
}

// DivergenceAblation compares the cost model's divergence-aware wavefront
// time (max over lanes) with a naive mean-over-lanes account, for the BH
// plans, showing why w-parallel's idle lanes hurt it and why jw-parallel's
// packed walks matter.
func DivergenceAblation(cfg Config, n int) (string, error) {
	sys := cfg.workload(n)
	model := core.TimeSpaceModel{Dev: cfg.Device}

	t := table.New(
		fmt.Sprintf("Ablation — SIMD divergence accounting (N=%d)", n),
		"plan", "time (lane-max)", "time (lane-mean)", "divergence penalty")
	for _, name := range []string{"w-parallel", "jw-parallel"} {
		ctx, err := cl.NewContext(cfg.Device)
		if err != nil {
			return "", err
		}
		plan, err := core.NewPlanByName(name,
			core.WithCLContext(ctx), core.WithBHOptions(cfg.bhOptions()))
		if err != nil {
			return "", err
		}
		prof, err := plan.Accel(sys.Clone())
		if err != nil {
			return "", err
		}
		launch := prof.Launches[0]
		g := core.FromResult(name, launch)
		maxSec := model.Analyze(g).PredictedSeconds

		// Mean accounting: pretend lanes share work perfectly within each
		// wavefront.
		var flops, aux float64
		for i := range launch.Groups {
			flops += float64(launch.Groups[i].Flops)
			aux += float64(launch.Groups[i].AuxFlops)
		}
		gMean := g
		gMean.WFMaxIssueTotal = (flops + aux) / float64(cfg.Device.WavefrontSize)
		meanSec := model.Analyze(gMean).PredictedSeconds

		t.AddRow(
			name,
			table.Seconds(maxSec),
			table.Seconds(meanSec),
			fmt.Sprintf("%.2fx", maxSec/meanSec),
		)
	}
	return t.String(), nil
}
