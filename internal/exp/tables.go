package exp

import (
	"fmt"

	"repro/internal/cl"
	"repro/internal/pp"
	"repro/internal/table"
)

// cpuCapSeconds is the point past which a CPU entry is reported as the
// paper reports it: ">" (too long to run). One hour matches the spirit of
// the paper's truncated rows.
const cpuCapSeconds = 3600.0

// Table1 renders Table 1: running time of the CPU implementation vs the GPU
// jw-parallel implementation over Config.Steps steps, and their ratio. The
// CPU baseline is the paper's: the direct O(N^2) summation on a Pentium 4
// 3.0 GHz (modelled); the GPU column is the full jw pipeline per step
// (host tree/list build + transfers + kernel). The paper reports a speedup
// around 400x.
func Table1(sw *Sweep) string {
	cfg := sw.Config
	t := table.New(
		fmt.Sprintf("Table 1 — running time, CPU vs GPU jw-parallel (%d steps)", cfg.Steps),
		"N", "CPU (PP)", "GPU (jw)", "speedup")
	for k, n := range cfg.Sizes {
		cpuFlops := int64(n) * int64(n) * pp.FlopsPerInteraction * int64(cfg.Steps)
		cpuSec := cfg.CPU.Seconds(cpuFlops)
		jw := sw.Points["jw-parallel"][k]
		gpuSec := jw.TotalSeconds() * float64(cfg.Steps)
		cpuCell := table.Seconds(cpuSec)
		if cpuSec > cpuCapSeconds {
			cpuCell = fmt.Sprintf("> %s", table.Seconds(cpuCapSeconds))
		}
		t.AddRow(
			fmt.Sprint(n),
			cpuCell,
			table.Seconds(gpuSec),
			fmt.Sprintf("%.0fx", cpuSec/gpuSec),
		)
	}
	return t.String()
}

// Table2 renders Table 2: *total* time of the four GPU plans over
// Config.Steps steps — kernel plus host-device transfers plus host-side
// tree/list construction, i.e. everything a step costs.
func Table2(sw *Sweep) string {
	cfg := sw.Config
	headers := append([]string{"N"}, PlanNames...)
	headers = append(headers, "jw pipelined")
	t := table.New(
		fmt.Sprintf("Table 2 — total time of the GPU plans (%d steps)", cfg.Steps),
		headers...)
	for k, n := range cfg.Sizes {
		row := []string{fmt.Sprint(n)}
		for _, name := range PlanNames {
			pt := sw.Points[name][k]
			row = append(row, table.Seconds(pt.TotalSeconds()*float64(cfg.Steps)))
		}
		// The paper's implementation note (4): the CPU builds step t+1's
		// walks while the GPU runs step t, so the steady-state jw step costs
		// max(host, device), not their sum.
		jw := sw.Points["jw-parallel"][k]
		pipelined := cl.Profile{
			KernelSeconds:   jw.KernelSeconds,
			TransferSeconds: jw.TransferSeconds,
			HostSeconds:     jw.HostSeconds,
		}.PipelinedSeconds()
		row = append(row, table.Seconds(pipelined*float64(cfg.Steps)))
		t.AddRow(row...)
	}
	return t.String()
}

// Table3 renders Table 3: *running* (kernel-only) time of the four GPU
// plans over Config.Steps steps, plus the jw-parallel advantage over each
// other plan — the paper's 2-5x claim.
func Table3(sw *Sweep) string {
	cfg := sw.Config
	headers := append([]string{"N"}, PlanNames...)
	headers = append(headers, "jw vs w", "jw vs best-PP")
	t := table.New(
		fmt.Sprintf("Table 3 — running (kernel) time of the GPU plans (%d steps)", cfg.Steps),
		headers...)
	for k, n := range cfg.Sizes {
		row := []string{fmt.Sprint(n)}
		var jw, w, bestPP float64
		for _, name := range PlanNames {
			pt := sw.Points[name][k]
			sec := pt.KernelSeconds * float64(cfg.Steps)
			row = append(row, table.Seconds(sec))
			switch name {
			case "jw-parallel":
				jw = sec
			case "w-parallel":
				w = sec
			case "i-parallel":
				bestPP = sec
			case "j-parallel":
				if sec < bestPP {
					bestPP = sec
				}
			}
		}
		row = append(row,
			fmt.Sprintf("%.1fx", w/jw),
			fmt.Sprintf("%.1fx", bestPP/jw),
		)
		t.AddRow(row...)
	}
	return t.String()
}
