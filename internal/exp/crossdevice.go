package exp

import (
	"fmt"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/table"
)

// CrossDevice runs the jw-parallel plan on several simulated devices — the
// paper's HD 5850, its bigger sibling, and a GTX 280-class SIMT part — plus
// the multi-GPU extension, answering the portability question the paper's
// PTPM is meant to answer analytically: how does the same mapping fare on a
// different space axis?
func CrossDevice(cfg Config, n int) (string, error) {
	sys := cfg.workload(n)

	type entry struct {
		name string
		plan core.Plan
		peak float64
	}
	var entries []entry
	for _, dc := range []gpusim.DeviceConfig{gpusim.HD5850(), gpusim.HD5870(), gpusim.GTX280Class()} {
		ctx, err := cl.NewContext(dc)
		if err != nil {
			return "", err
		}
		p, err := core.NewPlanByName("jw-parallel",
			core.WithCLContext(ctx), core.WithBHOptions(cfg.bhOptions()))
		if err != nil {
			return "", err
		}
		plan := p.(*core.JWParallel)
		if dc.WavefrontSize < plan.LocalSize {
			// Keep one wavefront per group on narrow-warp devices too; the
			// plan works with any LocalSize >= GroupCap.
			plan.LocalSize = 64
		}
		entries = append(entries, entry{dc.Name, plan, dc.PeakGFLOPS()})
	}
	for _, devices := range []int{2, 4} {
		multi, err := core.NewPlanByName(fmt.Sprintf("jw-parallel-x%d", devices),
			core.WithDevice(gpusim.HD5850()), core.WithBHOptions(cfg.bhOptions()))
		if err != nil {
			return "", err
		}
		entries = append(entries, entry{
			fmt.Sprintf("%d x HD 5850 (multi-GPU extension)", devices),
			multi,
			float64(devices) * gpusim.HD5850().PeakGFLOPS(),
		})
	}

	t := table.New(
		fmt.Sprintf("Extension — jw-parallel across devices (N=%d)", n),
		"device", "peak GF", "kernel time", "GFLOPS", "efficiency")
	for _, e := range entries {
		prof, err := e.plan.Accel(sys.Clone())
		if err != nil {
			return "", fmt.Errorf("exp: %s: %w", e.name, err)
		}
		g := prof.KernelGFLOPS()
		t.AddRow(
			e.name,
			fmt.Sprintf("%.0f", e.peak),
			table.Seconds(prof.Profile.KernelSeconds),
			table.GFLOPS(g),
			fmt.Sprintf("%.0f%%", 100*g/e.peak),
		)
	}
	return t.String(), nil
}
