package exp

import (
	"fmt"

	"repro/internal/bh"
	"repro/internal/pp"
	"repro/internal/table"
)

// QuadrupoleSweep compares the monopole treecode (the paper's order) with
// the quadrupole-corrected extension across opening angles: the accuracy an
// expansion order buys at fixed theta, and equivalently how much theta (and
// therefore work) the higher order lets a simulation give back at fixed
// accuracy.
func QuadrupoleSweep(cfg Config, n int, thetas []float32) (string, error) {
	sys := cfg.workload(n)
	exact := sys.Clone()
	pp.Scalar(exact, cfg.ppParams())

	t := table.New(
		fmt.Sprintf("Extension — expansion order (CPU treecode, N=%d)", n),
		"theta", "interactions", "mono RMS err", "quad RMS err", "quad gain")
	for _, theta := range thetas {
		opt := cfg.bhOptions()
		opt.Theta = theta

		mono := sys.Clone()
		treeM, err := bh.Build(mono, opt)
		if err != nil {
			return "", err
		}
		st := treeM.Accel(0)
		errM := pp.RMSRelError(exact.Acc, mono.Acc, 1e-3)

		quad := sys.Clone()
		treeQ, err := bh.Build(quad, opt)
		if err != nil {
			return "", err
		}
		treeQ.ComputeQuadrupoles()
		treeQ.AccelQuad()
		errQ := pp.RMSRelError(exact.Acc, quad.Acc, 1e-3)

		t.AddRow(
			fmt.Sprintf("%.2f", theta),
			table.Count(st.Interactions),
			fmt.Sprintf("%.2e", errM),
			fmt.Sprintf("%.2e", errQ),
			fmt.Sprintf("%.1fx", errM/errQ),
		)
	}
	return t.String(), nil
}
