package exp

import (
	"strings"
	"testing"
)

// sharedSweep is computed once: the harness is the expensive part of this
// package's tests.
var sharedSweep *Sweep

func getSweep(t *testing.T) *Sweep {
	t.Helper()
	if sharedSweep == nil {
		cfg := QuickConfig()
		sw, err := RunSweep(cfg)
		if err != nil {
			t.Fatalf("RunSweep: %v", err)
		}
		sharedSweep = sw
	}
	return sharedSweep
}

func TestSweepStructure(t *testing.T) {
	sw := getSweep(t)
	for _, name := range PlanNames {
		pts, ok := sw.Points[name]
		if !ok {
			t.Fatalf("plan %s missing", name)
		}
		if len(pts) != len(sw.Config.Sizes) {
			t.Fatalf("%s has %d points, want %d", name, len(pts), len(sw.Config.Sizes))
		}
		for k, pt := range pts {
			if pt.N != sw.Config.Sizes[k] {
				t.Errorf("%s point %d has N=%d", name, k, pt.N)
			}
			if pt.KernelSeconds <= 0 || pt.Interactions <= 0 || pt.Flops <= 0 {
				t.Errorf("%s N=%d: degenerate point %+v", name, pt.N, pt)
			}
			if pt.Launch == nil {
				t.Errorf("%s N=%d: no launch detail", name, pt.N)
			}
		}
	}
}

// TestPaperShapeFig4 asserts the Figure 4 criteria from DESIGN.md: a
// monotone-ish rise with saturation, on the reduced sweep.
func TestPaperShapeFig4(t *testing.T) {
	sw := getSweep(t)
	jw := sw.Points["jw-parallel"]
	first := jw[0].KernelGFLOPS
	last := jw[len(jw)-1].KernelGFLOPS
	if last <= first {
		t.Errorf("jw GFLOPS not rising: %g .. %g", first, last)
	}
	// At N=4096 the paper is past the knee (>=300 GFLOPS).
	for _, pt := range jw {
		if pt.N == 4096 && pt.KernelGFLOPS < 300 {
			t.Errorf("jw at N=4096: %g GFLOPS, want >= 300", pt.KernelGFLOPS)
		}
		if pt.KernelGFLOPS > 470 {
			t.Errorf("jw at N=%d: %g GFLOPS exceeds the ~431 calibration band", pt.N, pt.KernelGFLOPS)
		}
	}
}

// TestPaperShapeFig5 asserts the Figure 5 ordering criteria.
func TestPaperShapeFig5(t *testing.T) {
	sw := getSweep(t)
	for k, n := range sw.Config.Sizes {
		jw := sw.Points["jw-parallel"][k]
		w := sw.Points["w-parallel"][k]
		ip := sw.Points["i-parallel"][k]
		jp := sw.Points["j-parallel"][k]

		// jw-parallel leads w- and j-parallel in effective (same-problem)
		// GFLOPS at every size; i-parallel (a well-tuned direct kernel in
		// our model) is only overtaken past the algorithmic crossover at
		// N ~ 10^4 — EXPERIMENTS.md discusses this deviation.
		others := []Point{w, jp}
		if n >= 16384 {
			others = append(others, ip)
		}
		for _, other := range others {
			if n >= 1024 && jw.EffectiveGFLOPS < other.EffectiveGFLOPS {
				t.Errorf("N=%d: jw effective %g below %s %g",
					n, jw.EffectiveGFLOPS, other.Plan, other.EffectiveGFLOPS)
			}
		}
		// jw beats w-parallel on raw GFLOPS too (same algorithm family).
		if jw.KernelGFLOPS <= w.KernelGFLOPS {
			t.Errorf("N=%d: jw raw %g not above w %g", n, jw.KernelGFLOPS, w.KernelGFLOPS)
		}
	}
	// j-parallel beats i-parallel at the small end (the chamomile regime)...
	if sw.Points["j-parallel"][0].KernelGFLOPS <= sw.Points["i-parallel"][0].KernelGFLOPS {
		t.Errorf("N=%d: j-parallel %g not above i-parallel %g",
			sw.Config.Sizes[0],
			sw.Points["j-parallel"][0].KernelGFLOPS,
			sw.Points["i-parallel"][0].KernelGFLOPS)
	}
	// ...and i-parallel wins at the large end.
	last := len(sw.Config.Sizes) - 1
	if sw.Points["i-parallel"][last].KernelGFLOPS <= sw.Points["j-parallel"][last].KernelGFLOPS {
		t.Errorf("i-parallel not ahead of j-parallel at N=%d", sw.Config.Sizes[last])
	}
}

// TestPaperShapeTable3 asserts the jw-vs-w advantage stays in a plausible
// band (the paper reports 2-5x at its sizes; small N exaggerates it).
func TestPaperShapeTable3(t *testing.T) {
	sw := getSweep(t)
	last := len(sw.Config.Sizes) - 1
	jw := sw.Points["jw-parallel"][last].KernelSeconds
	w := sw.Points["w-parallel"][last].KernelSeconds
	ratio := w / jw
	if ratio < 1.5 || ratio > 20 {
		t.Errorf("jw vs w advantage %gx at N=%d out of plausible band",
			ratio, sw.Config.Sizes[last])
	}
}

func TestRenderersIncludeAllRows(t *testing.T) {
	sw := getSweep(t)
	for name, out := range map[string]string{
		"fig4":   Fig4(sw),
		"fig5":   Fig5(sw),
		"table1": Table1(sw),
		"table2": Table2(sw),
		"table3": Table3(sw),
	} {
		for _, n := range sw.Config.Sizes {
			if !strings.Contains(out, itoa(n)) {
				t.Errorf("%s missing row for N=%d:\n%s", name, n, out)
			}
		}
	}
	if !strings.Contains(Fig5(sw), "jw-parallel") {
		t.Error("fig5 missing plan columns")
	}
	if !strings.Contains(Table1(sw), "speedup") {
		t.Error("table1 missing speedup column")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestTable1SpeedupGrows(t *testing.T) {
	sw := getSweep(t)
	// The CPU is O(N^2) at fixed rate while the GPU pipeline gains
	// efficiency with N, so the speedup must grow along the sweep.
	cfg := sw.Config
	speedup := func(k int) float64 {
		n := cfg.Sizes[k]
		cpu := cfg.CPU.Seconds(int64(n) * int64(n) * 38)
		return cpu / sw.Points["jw-parallel"][k].TotalSeconds()
	}
	if speedup(len(cfg.Sizes)-1) <= speedup(0) {
		t.Error("speedup does not grow with N")
	}
}

func TestRunSweepValidation(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sizes = nil
	if _, err := RunSweep(cfg); err == nil {
		t.Error("empty sweep accepted")
	}
	cfg = QuickConfig()
	cfg.Steps = 0
	if _, err := RunSweep(cfg); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	cfg := QuickConfig()
	n := 2048

	out, err := ThetaSweep(cfg, n, []float32{0.4, 0.8})
	if err != nil || !strings.Contains(out, "theta") {
		t.Fatalf("ThetaSweep: %v\n%s", err, out)
	}
	out, err = GroupCapSweep(cfg, n, []int{16, 48})
	if err != nil || !strings.Contains(out, "groupCap") {
		t.Fatalf("GroupCapSweep: %v\n%s", err, out)
	}
	out, err = StagingAblation(cfg, []int{1024, 2048})
	if err != nil || !strings.Contains(out, "staging gain") {
		t.Fatalf("StagingAblation: %v\n%s", err, out)
	}
	out, err = OccupancyAblation(cfg, []int{512, 2048})
	if err != nil || !strings.Contains(out, "GFLOPS") {
		t.Fatalf("OccupancyAblation: %v\n%s", err, out)
	}
	out, err = DivergenceAblation(cfg, n)
	if err != nil || !strings.Contains(out, "divergence penalty") {
		t.Fatalf("DivergenceAblation: %v\n%s", err, out)
	}
}

// TestThetaTradeoffDirection checks the ablation's physics: larger theta
// means fewer interactions and more error.
func TestThetaTradeoffDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := QuickConfig()
	out, err := ThetaSweep(cfg, 2048, []float32{0.3, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpected output:\n%s", out)
	}
	row1 := strings.Fields(lines[2])
	row2 := strings.Fields(lines[3])
	// interactions column (index 1, with commas stripped).
	i1 := strings.ReplaceAll(row1[1], ",", "")
	i2 := strings.ReplaceAll(row2[1], ",", "")
	if len(i2) >= len(i1) && i2 >= i1 {
		t.Errorf("theta=0.9 interactions (%s) not below theta=0.3 (%s)", i2, i1)
	}
}
