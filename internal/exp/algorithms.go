package exp

import (
	"fmt"

	"repro/internal/bh"
	"repro/internal/fmm"
	"repro/internal/pp"
	"repro/internal/table"
)

// Algorithms compares the three force algorithms the paper surveys in its
// Section 2 — the O(N^2) particle-particle method, the O(N log N)
// Barnes-Hut treecode and the O(N) fast-multipole-style dual-tree method —
// on interaction counts, modelled paper-era CPU time and force accuracy.
// It grounds the paper's premise: the treecode family is what makes large N
// feasible, and the GPU plans are about executing it fast.
func Algorithms(cfg Config, sizes []int) (string, error) {
	t := table.New(
		"Extension — algorithm comparison on the modelled CPU ("+cfg.CPU.Name+")",
		"N", "algorithm", "interactions", "CPU time/step", "RMS force err")
	for _, n := range sizes {
		sys := cfg.workload(n)
		exact := sys.Clone()
		pp.Scalar(exact, cfg.ppParams())

		// PP: exact by construction.
		ppInter := int64(n) * int64(n)
		t.AddRow(
			fmt.Sprint(n), "PP (direct)",
			table.Count(ppInter),
			table.Seconds(cfg.CPU.Seconds(ppInter*pp.FlopsPerInteraction)),
			"0 (exact)",
		)

		// Barnes-Hut per-body walks.
		bhSys := sys.Clone()
		tree, err := bh.Build(bhSys, cfg.bhOptions())
		if err != nil {
			return "", err
		}
		st := tree.Accel(0)
		t.AddRow(
			"", "Barnes-Hut",
			table.Count(st.Interactions),
			table.Seconds(cfg.CPU.Seconds(st.Flops())),
			fmt.Sprintf("%.1e", pp.RMSRelError(exact.Acc, bhSys.Acc, 1e-3)),
		)

		// Dual-tree (FMM-style).
		fmmSys := sys.Clone()
		tree2, err := bh.Build(fmmSys, cfg.bhOptions())
		if err != nil {
			return "", err
		}
		fst, err := fmm.Accel(tree2, fmmSys)
		if err != nil {
			return "", err
		}
		t.AddRow(
			"", "FMM (dual-tree)",
			table.Count(fst.Interactions()),
			table.Seconds(cfg.CPU.Seconds(fst.Interactions()*pp.FlopsPerInteraction)),
			fmt.Sprintf("%.1e", pp.RMSRelError(exact.Acc, fmmSys.Acc, 1e-3)),
		)
	}
	return t.String(), nil
}
