package exp

import (
	"fmt"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/ic"
	"repro/internal/table"
)

// WorkloadSensitivity runs jw-parallel on qualitatively different mass
// distributions at a fixed N. The paper evaluates on one workload; this
// extension checks the plan's performance is not an artifact of the Plummer
// sphere's central concentration: uniform distributions give shorter
// interaction lists (less depth), cold disks give anisotropic trees, and
// colliding clusters carry two density centres.
func WorkloadSensitivity(cfg Config, n int) (string, error) {
	t := table.New(
		fmt.Sprintf("Extension — workload sensitivity (jw-parallel, N=%d)", n),
		"workload", "interactions", "inter/body", "kernel time", "GFLOPS")
	workloads := []struct {
		name string
	}{
		{"plummer"}, {"cube"}, {"disk"}, {"collision"},
	}
	for _, wl := range workloads {
		sys := cfg.workload(n)
		switch wl.name {
		case "cube":
			sys = ic.UniformCube(n, 2.0, cfg.Seed)
		case "disk":
			sys = ic.Disk(n, 1.0, cfg.Seed)
		case "collision":
			sys = ic.Collision(n, 4.0, 0.5, cfg.Seed)
		}
		ctx, err := cl.NewContext(cfg.Device)
		if err != nil {
			return "", err
		}
		plan, err := core.NewPlanByName("jw-parallel",
			core.WithCLContext(ctx), core.WithBHOptions(cfg.bhOptions()))
		if err != nil {
			return "", err
		}
		prof, err := plan.Accel(sys)
		if err != nil {
			return "", fmt.Errorf("exp: workload %s: %w", wl.name, err)
		}
		t.AddRow(
			wl.name,
			table.Count(prof.Interactions),
			fmt.Sprintf("%.0f", float64(prof.Interactions)/float64(n)),
			table.Seconds(prof.Profile.KernelSeconds),
			table.GFLOPS(prof.KernelGFLOPS()),
		)
	}
	return t.String(), nil
}
