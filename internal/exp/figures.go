package exp

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// Fig4 renders Figure 4: jw-parallel performance (GFLOPS) against the
// number of particles. The paper reports ~300 GFLOPS sustained from
// N = 4096 and a peak around 431 GFLOPS on the HD 5850.
func Fig4(sw *Sweep) string {
	t := table.New("Figure 4 — jw-parallel performance vs number of particles "+
		"(device: "+sw.Config.Device.Name+")",
		"N", "GFLOPS", "kernel time", "interactions", "inter/body")
	for _, pt := range sw.Points["jw-parallel"] {
		t.AddRow(
			fmt.Sprint(pt.N),
			table.GFLOPS(pt.KernelGFLOPS),
			table.Seconds(pt.KernelSeconds),
			table.Count(pt.Interactions),
			fmt.Sprintf("%.0f", float64(pt.Interactions)/float64(pt.N)),
		)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteByte('\n')
	b.WriteString(sparkline("jw-parallel GFLOPS", sw.Points["jw-parallel"], func(p Point) float64 {
		return p.KernelGFLOPS
	}))
	return b.String()
}

// Fig5 renders Figure 5: performance of all four plans against the number
// of particles. Two series are reported per plan:
//
//   - "raw" GFLOPS: the plan's own executed flops over kernel time — how
//     fast the hardware runs the plan's arithmetic;
//   - "effective" GFLOPS: the jw-parallel flop count at the same N over the
//     plan's kernel time — useful work per second on the same physical
//     problem, the basis on which the paper's jw-parallel is 2-5x ahead
//     (the PP plans execute N^2 interactions where the treecode needs far
//     fewer, so their raw rate overstates them).
func Fig5(sw *Sweep) string {
	raw := table.New("Figure 5 — plan performance vs number of particles (raw GFLOPS: own flops / kernel time)",
		append([]string{"N"}, PlanNames...)...)
	eff := table.New("Figure 5 (effective GFLOPS: same-problem useful flops / kernel time)",
		append([]string{"N"}, PlanNames...)...)
	for k, n := range sw.Config.Sizes {
		rawRow := []string{fmt.Sprint(n)}
		effRow := []string{fmt.Sprint(n)}
		for _, name := range PlanNames {
			pt := sw.Points[name][k]
			rawRow = append(rawRow, table.GFLOPS(pt.KernelGFLOPS))
			effRow = append(effRow, table.GFLOPS(pt.EffectiveGFLOPS))
		}
		raw.AddRow(rawRow...)
		eff.AddRow(effRow...)
	}
	return raw.String() + "\n" + eff.String()
}

// sparkline renders a crude textual plot of a series, enough to see the
// knee and saturation of Figure 4 in a terminal.
func sparkline(label string, pts []Point, f func(Point) float64) string {
	if len(pts) == 0 {
		return ""
	}
	var maxV float64
	for _, p := range pts {
		if v := f(p); v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (each # = %.0f):\n", label, maxV/50)
	for _, p := range pts {
		n := int(f(p) / maxV * 50)
		fmt.Fprintf(&b, "%8d | %s %.1f\n", p.N, strings.Repeat("#", n), f(p))
	}
	return b.String()
}
