package diag

import (
	"math"
	"strings"
	"testing"

	"repro/internal/body"
	"repro/internal/ic"
	"repro/internal/vec"
)

func TestLagrangianRadiiPlummer(t *testing.T) {
	s := ic.Plummer(8000, 1)
	radii, err := LagrangianRadii(s, 0.1, 0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic Plummer: r_f = a / sqrt(f^(-2/3) - 1): r10 ~ 0.5241,
	// r50 ~ 1.3048, r90 ~ 3.7069 (the generator truncates at mass fraction
	// 0.999, pulling the outer radii slightly inward).
	checks := []struct{ got, want, tol float64 }{
		{radii[0], 0.5241, 0.08},
		{radii[1], 1.3048, 0.10},
		{radii[2], 3.7069, 0.45},
	}
	for i, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("radius %d = %g, want %g +/- %g", i, c.got, c.want, c.tol)
		}
	}
	if !(radii[0] < radii[1] && radii[1] < radii[2]) {
		t.Errorf("radii not ascending: %v", radii)
	}
}

func TestLagrangianRadiiValidation(t *testing.T) {
	s := ic.Plummer(10, 1)
	if _, err := LagrangianRadii(s, 0); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, err := LagrangianRadii(s, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := LagrangianRadii(s, 0.5, 0.3); err == nil {
		t.Error("descending fractions accepted")
	}
	if _, err := LagrangianRadii(body.NewSystem(0), 0.5); err == nil {
		t.Error("empty system accepted")
	}
	// Fraction 1 returns the outermost radius.
	r, err := LagrangianRadii(s, 1)
	if err != nil || r[0] <= 0 {
		t.Errorf("full-mass radius %v err %v", r, err)
	}
}

func TestDensityProfileDecreases(t *testing.T) {
	s := ic.Plummer(8000, 2)
	radii, density, err := DensityProfile(s, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(radii) != 12 || len(density) != 12 {
		t.Fatalf("lengths %d %d", len(radii), len(density))
	}
	// Plummer density falls monotonically; sampling noise allows small
	// bumps, so compare first to middle to last.
	if !(density[0] > density[5] && density[5] > density[11]) {
		t.Errorf("density not decreasing: %v", density)
	}
	// Central density of a unit Plummer sphere is 3/(4 pi) ~ 0.2387.
	if density[0] < 0.1 || density[0] > 0.4 {
		t.Errorf("central density %g, want ~0.24", density[0])
	}
	if _, _, err := DensityProfile(s, -1, 5); err == nil {
		t.Error("negative rmax accepted")
	}
	if _, _, err := DensityProfile(s, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestVelocityDispersion(t *testing.T) {
	// Two bodies moving oppositely: mean 0, sigma1D = |v|/sqrt(3).
	s := body.FromBodies([]body.Body{
		{Pos: vec.V3{X: 1}, Vel: vec.V3{X: 2}, Mass: 1},
		{Pos: vec.V3{X: -1}, Vel: vec.V3{X: -2}, Mass: 1},
	})
	want := 2.0 / math.Sqrt(3)
	if got := VelocityDispersion(s); math.Abs(got-want) > 1e-9 {
		t.Errorf("sigma = %g, want %g", got, want)
	}
	// Bulk motion does not contribute.
	for i := range s.Vel {
		s.Vel[i].Y += 10
	}
	if got := VelocityDispersion(s); math.Abs(got-want) > 1e-5 {
		t.Errorf("sigma with bulk flow = %g, want %g", got, want)
	}
}

func TestVirialRatioEquilibrium(t *testing.T) {
	s := ic.Plummer(4000, 3)
	vr := VirialRatio(s, 1, 0)
	if vr < 0.4 || vr > 0.6 {
		t.Errorf("Plummer virial ratio %g, want ~0.5", vr)
	}
	cold := ic.UniformCube(500, 2, 3)
	if vr := VirialRatio(cold, 1, 0); vr != 0 {
		t.Errorf("cold system virial ratio %g, want 0", vr)
	}
}

func TestSummarize(t *testing.T) {
	s := ic.Plummer(1000, 4)
	sum, err := Summarize(s, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 1000 || math.Abs(sum.TotalMass-1) > 1e-3 {
		t.Errorf("summary basics: %+v", sum)
	}
	if sum.VirialRatio < 0.35 || sum.VirialRatio > 0.65 {
		t.Errorf("virial ratio %g", sum.VirialRatio)
	}
	if !(sum.R10 < sum.HalfMassRadius && sum.HalfMassRadius < sum.R90) {
		t.Errorf("radii ordering: %+v", sum)
	}
	str := sum.String()
	for _, want := range []string{"N=1000", "-K/U", "sigma"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q: %s", want, str)
		}
	}
}
