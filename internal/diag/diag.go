// Package diag provides the astrophysical diagnostics used to judge whether
// a simulation is physically sensible: Lagrangian radii, radial density
// profiles, velocity dispersion, and the virial ratio. The galaxy and
// collision examples report them, and tests use them to verify that the
// initial-condition generators produce the distributions they claim.
package diag

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/body"
	"repro/internal/vec"
)

// LagrangianRadii returns, for each requested mass fraction in (0,1], the
// radius around the centre of mass enclosing that fraction of the total
// mass. Fractions must be ascending. The half-mass radius is
// LagrangianRadii(s, 0.5)[0].
func LagrangianRadii(s *body.System, fractions ...float64) ([]float64, error) {
	if s.N() == 0 {
		return nil, fmt.Errorf("diag: empty system")
	}
	for i, f := range fractions {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("diag: mass fraction %g out of (0,1]", f)
		}
		if i > 0 && f <= fractions[i-1] {
			return nil, fmt.Errorf("diag: fractions not ascending at %d", i)
		}
	}
	com := s.CenterOfMass()
	type rm struct {
		r float64
		m float64
	}
	rs := make([]rm, s.N())
	for i := range s.Pos {
		rs[i] = rm{r: s.Pos[i].D3().Sub(com).Norm(), m: float64(s.Mass[i])}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].r < rs[b].r })

	total := s.TotalMass()
	out := make([]float64, len(fractions))
	var cum float64
	k := 0
	for _, e := range rs {
		cum += e.m
		for k < len(fractions) && cum >= fractions[k]*total {
			out[k] = e.r
			k++
		}
		if k == len(fractions) {
			break
		}
	}
	for ; k < len(fractions); k++ {
		out[k] = rs[len(rs)-1].r
	}
	return out, nil
}

// DensityProfile bins bodies into nbins spherical shells of equal width out
// to rmax around the centre of mass and returns the shell-averaged mass
// density of each bin (bin centres in radii).
func DensityProfile(s *body.System, rmax float64, nbins int) (radii, density []float64, err error) {
	if nbins <= 0 || rmax <= 0 {
		return nil, nil, fmt.Errorf("diag: bad profile parameters rmax=%g nbins=%d", rmax, nbins)
	}
	com := s.CenterOfMass()
	mass := make([]float64, nbins)
	dr := rmax / float64(nbins)
	for i := range s.Pos {
		r := s.Pos[i].D3().Sub(com).Norm()
		bin := int(r / dr)
		if bin >= 0 && bin < nbins {
			mass[bin] += float64(s.Mass[i])
		}
	}
	radii = make([]float64, nbins)
	density = make([]float64, nbins)
	for b := 0; b < nbins; b++ {
		r0 := float64(b) * dr
		r1 := r0 + dr
		vol := 4.0 / 3.0 * math.Pi * (r1*r1*r1 - r0*r0*r0)
		radii[b] = r0 + dr/2
		density[b] = mass[b] / vol
	}
	return radii, density, nil
}

// VelocityDispersion returns the 1-D velocity dispersion sigma (rms of one
// Cartesian velocity component about the mean, mass-weighted).
func VelocityDispersion(s *body.System) float64 {
	m := s.TotalMass()
	if m == 0 {
		return 0
	}
	mean := vec.D3{}
	for i := range s.Vel {
		mean = mean.Add(s.Vel[i].D3().Scale(float64(s.Mass[i])))
	}
	mean = mean.Scale(1 / m)
	var sum float64
	for i := range s.Vel {
		d := s.Vel[i].D3().Sub(mean)
		sum += float64(s.Mass[i]) * d.Norm2()
	}
	return math.Sqrt(sum / m / 3)
}

// VirialFromEnergies returns the virial ratio -K/U given the kinetic and
// potential energies, or 0 when the potential is zero. 0.5 is equilibrium.
func VirialFromEnergies(k, u float64) float64 {
	if u == 0 {
		return 0
	}
	return -k / u
}

// VirialRatio returns -K/U for the softened potential; 0.5 is equilibrium.
func VirialRatio(s *body.System, g, eps float64) float64 {
	return VirialFromEnergies(s.KineticEnergy(), s.PotentialEnergy(g, eps))
}

// Summary is a one-call bundle of the standard diagnostics.
type Summary struct {
	N               int
	TotalMass       float64
	Kinetic         float64
	Potential       float64
	VirialRatio     float64
	HalfMassRadius  float64
	R10, R90        float64 // 10% and 90% Lagrangian radii
	Sigma1D         float64
	CenterOfMass    vec.D3
	Momentum        vec.D3
	AngularMomentum vec.D3
}

// Summarize computes a Summary (O(N^2) because of the exact potential).
func Summarize(s *body.System, g, eps float64) (Summary, error) {
	radii, err := LagrangianRadii(s, 0.1, 0.5, 0.9)
	if err != nil {
		return Summary{}, err
	}
	k := s.KineticEnergy()
	u := s.PotentialEnergy(g, eps)
	sum := Summary{
		N:               s.N(),
		TotalMass:       s.TotalMass(),
		Kinetic:         k,
		Potential:       u,
		HalfMassRadius:  radii[1],
		R10:             radii[0],
		R90:             radii[2],
		Sigma1D:         VelocityDispersion(s),
		CenterOfMass:    s.CenterOfMass(),
		Momentum:        s.Momentum(),
		AngularMomentum: s.AngularMomentum(),
	}
	sum.VirialRatio = VirialFromEnergies(k, u)
	return sum, nil
}

// String renders the summary for example output.
func (s Summary) String() string {
	return fmt.Sprintf(
		"N=%d M=%.4f E=%.4f (K=%.4f U=%.4f, -K/U=%.3f) r10/50/90=%.3f/%.3f/%.3f sigma=%.4f",
		s.N, s.TotalMass, s.Kinetic+s.Potential, s.Kinetic, s.Potential,
		s.VirialRatio, s.R10, s.HalfMassRadius, s.R90, s.Sigma1D)
}
