package cliflags

import (
	"flag"
	"io"
	"reflect"
	"testing"

	"repro/internal/integrate"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

func quietFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestPlanFlagWithAlias(t *testing.T) {
	fs := quietFlagSet()
	p := Plan(fs, "jw-parallel", "engine")
	if err := fs.Parse([]string{"-engine", "i-parallel"}); err != nil {
		t.Fatal(err)
	}
	if *p != "i-parallel" {
		t.Errorf("alias did not set the shared value: %q", *p)
	}
	fs2 := quietFlagSet()
	p2 := Plan(fs2, "jw-parallel", "engine")
	if err := fs2.Parse([]string{"-plan", "w-parallel"}); err != nil {
		t.Fatal(err)
	}
	if *p2 != "w-parallel" {
		t.Errorf("-plan did not set the value: %q", *p2)
	}
}

func TestDeviceFlagValidates(t *testing.T) {
	fs := quietFlagSet()
	d := DeviceFlag(fs, "hd5850")
	if err := fs.Parse([]string{"-device", "gtx280"}); err != nil {
		t.Fatal(err)
	}
	if d.String() != "gtx280" || d.Config().Name == "" {
		t.Errorf("device = %q cfg=%+v", d, d.Config())
	}
	fs2 := quietFlagSet()
	DeviceFlag(fs2, "hd5850")
	if err := fs2.Parse([]string{"-device", "rtx4090"}); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestDeviceFlagDefault(t *testing.T) {
	fs := quietFlagSet()
	d := DeviceFlag(fs, "hd5850")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if d.Config().ComputeUnits == 0 {
		t.Error("default device not resolved")
	}
}

func TestKernelCheckFlag(t *testing.T) {
	fs := quietFlagSet()
	k := KernelCheckFlag(fs, "warn")
	if err := fs.Parse([]string{"-kernel-check", "strict"}); err != nil {
		t.Fatal(err)
	}
	if k.Mode() != "strict" {
		t.Errorf("mode = %q", k.Mode())
	}
	fs2 := quietFlagSet()
	KernelCheckFlag(fs2, "warn")
	if err := fs2.Parse([]string{"-kernel-check", "loose"}); err == nil {
		t.Error("bad kernel-check mode accepted")
	}
}

func TestPipelineFlag(t *testing.T) {
	fs := quietFlagSet()
	p := PipelineFlag(fs, "serial")
	if err := fs.Parse([]string{"-pipeline", "overlap"}); err != nil {
		t.Fatal(err)
	}
	if p.Mode() != pipeline.Overlap {
		t.Errorf("mode = %v", p.Mode())
	}
	fs2 := quietFlagSet()
	PipelineFlag(fs2, "serial")
	if err := fs2.Parse([]string{"-pipeline", "async"}); err == nil {
		t.Error("bad pipeline mode accepted")
	}
}

func TestSizesFlag(t *testing.T) {
	fs := quietFlagSet()
	s := SizesFlag(fs)
	if err := fs.Parse([]string{"-sizes", "1024, 2048,4096"}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.List(), []int{1024, 2048, 4096}) {
		t.Errorf("sizes = %v", s.List())
	}
	fs2 := quietFlagSet()
	SizesFlag(fs2)
	if err := fs2.Parse([]string{"-sizes", "1024,-3"}); err == nil {
		t.Error("negative size accepted")
	}
	fs3 := quietFlagSet()
	s3 := SizesFlag(fs3)
	if err := fs3.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s3.List() != nil {
		t.Errorf("unset sizes = %v, want nil", s3.List())
	}
}

func TestICFlagWithAlias(t *testing.T) {
	fs := quietFlagSet()
	c := ICFlag(fs, "plummer", "workload")
	if err := fs.Parse([]string{"-workload", "disk"}); err != nil {
		t.Fatal(err)
	}
	if c.Name() != "disk" {
		t.Errorf("alias did not set the scenario: %q", c.Name())
	}
	if sys := c.Make(16, 1); sys.N() != 16 {
		t.Errorf("Make produced %d bodies", sys.N())
	}
	fs2 := quietFlagSet()
	ICFlag(fs2, "plummer")
	if err := fs2.Parse([]string{"-ic", "torus"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	// Every library scenario must be both accepted and generatable.
	for _, name := range sim.ScenarioNames() {
		fs := quietFlagSet()
		c := ICFlag(fs, "plummer")
		if err := fs.Parse([]string{"-ic", name}); err != nil {
			t.Errorf("scenario %q rejected: %v", name, err)
			continue
		}
		if sys := c.Make(8, 2); sys.N() != 8 {
			t.Errorf("scenario %q: Make produced %d bodies", name, sys.N())
		}
	}
}

func TestICSeedWithAlias(t *testing.T) {
	fs := quietFlagSet()
	s := ICSeed(fs, 1, "seed")
	if err := fs.Parse([]string{"-seed", "42"}); err != nil {
		t.Fatal(err)
	}
	if *s != 42 {
		t.Errorf("alias did not set the seed: %d", *s)
	}
	fs2 := quietFlagSet()
	s2 := ICSeed(fs2, 7)
	if err := fs2.Parse([]string{"-ic-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if *s2 != 9 {
		t.Errorf("-ic-seed did not set the value: %d", *s2)
	}
}

func TestIntegratorFlag(t *testing.T) {
	fs := quietFlagSet()
	g := IntegratorFlag(fs, "leapfrog")
	if err := fs.Parse([]string{"-integrator", "hermite"}); err != nil {
		t.Fatal(err)
	}
	if g.Name() != "hermite" || g.New().Name() != "hermite" {
		t.Errorf("integrator = %q (New: %q)", g.Name(), g.New().Name())
	}
	fs2 := quietFlagSet()
	IntegratorFlag(fs2, "leapfrog")
	if err := fs2.Parse([]string{"-integrator", "rk9"}); err == nil {
		t.Error("unknown integrator accepted")
	}
	// Every canonical name must round-trip through the flag.
	for _, name := range integrate.Names() {
		fs := quietFlagSet()
		g := IntegratorFlag(fs, "leapfrog")
		if err := fs.Parse([]string{"-integrator", name}); err != nil {
			t.Errorf("integrator %q rejected: %v", name, err)
			continue
		}
		if g.New().Name() != name {
			t.Errorf("integrator %q: New() named %q", name, g.New().Name())
		}
	}
}

func TestParseSizes(t *testing.T) {
	if got, err := ParseSizes(""); err != nil || got != nil {
		t.Errorf("empty: %v %v", got, err)
	}
	if _, err := ParseSizes("a,b"); err == nil {
		t.Error("garbage accepted")
	}
	if got, _ := ParseSizes("8"); !reflect.DeepEqual(got, []int{8}) {
		t.Errorf("single = %v", got)
	}
}
