// Package cliflags defines the command-line flags shared by every binary in
// this module — nbody, bench, experiments, ptpm, kernelcheck and nbodyd —
// so that -plan, -n, -device, -kernel-check and -pipeline mean the same
// thing, accept the same values, and fail with the same messages everywhere.
//
// Before this package each command declared its own copies, and they had
// drifted: nbody called the plan flag -engine, bench parsed device names in
// a private switch, experiments had no kernel gate at all, and size lists
// were split in two slightly different ways. A flag added here is defined
// once and picked up by every command that registers it.
//
// The typed flags validate at parse time (flag.Value.Set), so a bad value
// fails with the standard flag-package usage message instead of a mid-run
// error.
package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/body"
	"repro/internal/gpusim"
	"repro/internal/ic"
	"repro/internal/integrate"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// Plan registers the canonical -plan flag with the given default, plus any
// aliases (nbody keeps -engine as a deprecated alias) bound to the same
// value, and returns the shared value.
func Plan(fs *flag.FlagSet, def string, aliases ...string) *string {
	p := new(string)
	*p = def
	const usage = "execution plan / force engine (GPU: i-parallel, j-parallel, w-parallel, jw-parallel, jw-parallel-xK; CPU: cpu-pp, cpu-bh, cpu-bh-refit, cpu-fmm)"
	fs.StringVar(p, "plan", def, usage)
	for _, a := range aliases {
		fs.StringVar(p, a, def, "alias for -plan")
	}
	return p
}

// N registers the shared -n body-count flag.
func N(fs *flag.FlagSet, def int) *int {
	return fs.Int("n", def, "number of bodies")
}

// HostWorkers registers the shared -host-workers flag: the goroutine cap of
// the host-side build pipeline (tree + walk construction). 0 uses GOMAXPROCS;
// 1 forces the serial (allocation-free steady-state) path.
func HostWorkers(fs *flag.FlagSet) *int {
	return fs.Int("host-workers", 0,
		"host-side build goroutines (0 = GOMAXPROCS, 1 = serial)")
}

// Device is the -device flag: a modelled-device name validated at parse
// time. The zero value is invalid; register through DeviceFlag.
type Device struct {
	name string
	cfg  gpusim.DeviceConfig
}

// DeviceFlag registers -device with the given default name ("hd5850" for
// every current command) and returns the typed value.
func DeviceFlag(fs *flag.FlagSet, def string) *Device {
	d := &Device{}
	if err := d.Set(def); err != nil {
		panic(fmt.Sprintf("cliflags: bad default device %q: %v", def, err))
	}
	fs.Var(d, "device", "device model: "+strings.Join(DeviceNames(), ", "))
	return d
}

// DeviceNames lists the accepted -device values.
func DeviceNames() []string { return []string{"hd5850", "hd5870", "gtx280", "test"} }

// String implements flag.Value.
func (d *Device) String() string { return d.name }

// Set implements flag.Value, resolving and validating the device name.
func (d *Device) Set(s string) error {
	switch s {
	case "hd5850":
		d.cfg = gpusim.HD5850()
	case "hd5870":
		d.cfg = gpusim.HD5870()
	case "gtx280":
		d.cfg = gpusim.GTX280Class()
	case "test":
		d.cfg = gpusim.TestDevice()
	default:
		return fmt.Errorf("unknown device %q (want %s)", s, strings.Join(DeviceNames(), ", "))
	}
	d.name = s
	return nil
}

// Config returns the resolved device model.
func (d *Device) Config() gpusim.DeviceConfig { return d.cfg }

// KernelCheck is the -kernel-check flag: off, warn or strict, validated at
// parse time.
type KernelCheck struct {
	mode string
}

// KernelCheckFlag registers -kernel-check with the given default mode
// (every command defaults to "warn").
func KernelCheckFlag(fs *flag.FlagSet, def string) *KernelCheck {
	k := &KernelCheck{}
	if err := k.Set(def); err != nil {
		panic(fmt.Sprintf("cliflags: bad default kernel-check mode %q: %v", def, err))
	}
	fs.Var(k, "kernel-check", "lint the shipped OpenCL kernels before running: off, warn, strict")
	return k
}

// String implements flag.Value.
func (k *KernelCheck) String() string { return k.mode }

// Set implements flag.Value.
func (k *KernelCheck) Set(s string) error {
	switch s {
	case "off", "warn", "strict":
		k.mode = s
		return nil
	}
	return fmt.Errorf("unknown kernel-check mode %q (want off, warn or strict)", s)
}

// Mode returns the validated mode string, as consumed by
// core.PreflightKernelCheck and core.WithKernelCheck.
func (k *KernelCheck) Mode() string { return k.mode }

// Pipeline is the -pipeline flag: the cross-step execution mode, validated
// at parse time.
type Pipeline struct {
	mode pipeline.Mode
}

// PipelineFlag registers -pipeline with the given default ("serial" for
// every current command).
func PipelineFlag(fs *flag.FlagSet, def string) *Pipeline {
	p := &Pipeline{}
	if err := p.Set(def); err != nil {
		panic(fmt.Sprintf("cliflags: bad default pipeline mode %q: %v", def, err))
	}
	fs.Var(p, "pipeline", "cross-step execution on the modelled timeline: serial or overlap (GPU plans only)")
	return p
}

// String implements flag.Value.
func (p *Pipeline) String() string { return p.mode.String() }

// Set implements flag.Value.
func (p *Pipeline) Set(s string) error {
	m, err := pipeline.ParseMode(s)
	if err != nil {
		return err
	}
	p.mode = m
	return nil
}

// Mode returns the parsed pipeline mode.
func (p *Pipeline) Mode() pipeline.Mode { return p.mode }

// IC is the -ic flag: a named initial-conditions scenario from the library
// in internal/ic, validated against sim.ScenarioNames at parse time.
type IC struct {
	name string
}

// ICFlag registers -ic with the given default scenario, plus any aliases
// (nbody keeps -workload as a deprecated alias) bound to the same value.
func ICFlag(fs *flag.FlagSet, def string, aliases ...string) *IC {
	c := &IC{}
	if err := c.Set(def); err != nil {
		panic(fmt.Sprintf("cliflags: bad default scenario %q: %v", def, err))
	}
	fs.Var(c, "ic", "initial conditions: "+strings.Join(sim.ScenarioNames(), ", "))
	for _, a := range aliases {
		fs.Var(c, a, "alias for -ic")
	}
	return c
}

// String implements flag.Value.
func (c *IC) String() string { return c.name }

// Set implements flag.Value, validating against the scenario library.
func (c *IC) Set(s string) error {
	for _, known := range sim.ScenarioNames() {
		if s == known {
			c.name = s
			return nil
		}
	}
	return fmt.Errorf("unknown scenario %q (want %s)", s, strings.Join(sim.ScenarioNames(), ", "))
}

// Name returns the validated scenario name (sim.Config.Scenario takes it
// verbatim, which arms the scenario's watchdog presets).
func (c *IC) Name() string { return c.name }

// Make generates the scenario's initial conditions with the library's
// default per-family parameters — the same defaults the job service applies
// to a JobSpec scenario, so a CLI run and a served job with matching
// (scenario, n, seed) start from the identical state.
func (c *IC) Make(n int, seed uint64) *body.System {
	switch c.name {
	case "plummer":
		return ic.Plummer(n, seed)
	case "hernquist":
		return ic.Hernquist(n, seed)
	case "cube":
		return ic.UniformCube(n, 2.0, seed)
	case "disk":
		return ic.Disk(n, 1.0, seed)
	case "collision":
		return ic.Collision(n, 4.0, 0.5, seed)
	}
	panic(fmt.Sprintf("cliflags: unvalidated scenario %q", c.name))
}

// ICSeed registers the shared -ic-seed scenario-seed flag, plus any aliases
// (commands keep their old -seed spelling as an alias).
func ICSeed(fs *flag.FlagSet, def uint64, aliases ...string) *uint64 {
	p := new(uint64)
	*p = def
	fs.Uint64Var(p, "ic-seed", def, "initial-conditions seed (selects the realization)")
	for _, a := range aliases {
		fs.Uint64Var(p, a, def, "alias for -ic-seed")
	}
	return p
}

// Integrator is the -integrator flag: a canonical integrator name validated
// through integrate.New at parse time, so a bad value fails in the usage
// message with the canonical-name list.
type Integrator struct {
	name string
}

// IntegratorFlag registers -integrator with the given default scheme.
func IntegratorFlag(fs *flag.FlagSet, def string) *Integrator {
	g := &Integrator{}
	if err := g.Set(def); err != nil {
		panic(fmt.Sprintf("cliflags: bad default integrator %q: %v", def, err))
	}
	fs.Var(g, "integrator", "integration scheme: "+strings.Join(integrate.Names(), ", "))
	return g
}

// String implements flag.Value.
func (g *Integrator) String() string { return g.name }

// Set implements flag.Value.
func (g *Integrator) Set(s string) error {
	if _, err := integrate.New(s); err != nil {
		return err
	}
	g.name = s
	return nil
}

// Name returns the validated integrator name.
func (g *Integrator) Name() string { return g.name }

// New constructs a fresh integrator of the selected scheme.
func (g *Integrator) New() integrate.Integrator {
	ig, err := integrate.New(g.name)
	if err != nil {
		panic(fmt.Sprintf("cliflags: unvalidated integrator %q: %v", g.name, err))
	}
	return ig
}

// ParseSizes parses a comma-separated list of positive body counts — the
// one parser behind every -sizes flag.
func ParseSizes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q (want a positive body count)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// Sizes is the -sizes flag: a comma-separated list of body counts, empty
// meaning "the command's default sweep".
type Sizes struct {
	list []int
	raw  string
}

// SizesFlag registers -sizes.
func SizesFlag(fs *flag.FlagSet) *Sizes {
	s := &Sizes{}
	fs.Var(s, "sizes", "comma-separated body counts (default: the command's tracked sweep)")
	return s
}

// String implements flag.Value.
func (s *Sizes) String() string { return s.raw }

// Set implements flag.Value.
func (s *Sizes) Set(v string) error {
	list, err := ParseSizes(v)
	if err != nil {
		return err
	}
	s.list, s.raw = list, v
	return nil
}

// List returns the parsed sizes; nil when the flag was not given.
func (s *Sizes) List() []int { return s.list }
