// Package rng provides small, deterministic pseudo-random number generators
// for reproducible workload generation.
//
// The simulation and benchmark harness must generate identical initial
// conditions on every run and on every platform, so the package implements
// its own generators (SplitMix64 for seeding, xoshiro256** for the stream)
// instead of relying on math/rand, whose stream is not guaranteed stable
// across Go releases.
package rng

import "math"

// SplitMix64 advances the given state and returns the next value of the
// SplitMix64 sequence. It is used to expand a single seed into the larger
// state required by xoshiro256**.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** pseudo-random generator. The zero value is not
// valid; construct instances with New.
type Rand struct {
	s [4]uint64

	// cached second Gaussian from the Box-Muller transform
	gauss    float64
	hasGauss bool
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// A state of all zeros is the single invalid xoshiro state. SplitMix64
	// cannot produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value of the xoshiro256** sequence.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17

	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Range returns a uniform value in [lo, hi).
func (r *Rand) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, simplified: for the modest n
	// used in workload generation the bias of a plain modulo is negligible,
	// but rejection keeps the generator exactly uniform.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// NormFloat64 returns a standard normal (mean 0, stddev 1) value using the
// Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// UnitSphere returns a point uniformly distributed on the surface of the
// unit sphere.
func (r *Rand) UnitSphere() (x, y, z float64) {
	for {
		a := 2*r.Float64() - 1
		b := 2*r.Float64() - 1
		s := a*a + b*b
		if s >= 1 {
			continue
		}
		f := 2 * math.Sqrt(1-s)
		return a * f, b * f, 1 - 2*s
	}
}

// InBall returns a point uniformly distributed inside the unit ball.
func (r *Rand) InBall() (x, y, z float64) {
	for {
		x = 2*r.Float64() - 1
		y = 2*r.Float64() - 1
		z = 2*r.Float64() - 1
		if x*x+y*y+z*z <= 1 {
			return x, y, z
		}
	}
}

// Shuffle permutes the order of n elements using the Fisher-Yates algorithm,
// calling swap to exchange elements i and j.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
