package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverge at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs from different seeds", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the published SplitMix64 algorithm with seed 0.
	state := uint64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Errorf("SplitMix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestFloat64Range01(t *testing.T) {
	r := New(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %g, want ~0.5", mean)
	}
}

func TestFloat64RangeBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64Range(-3, 5)
		if f < -3 || f >= 5 {
			t.Fatalf("Float64Range(-3,5) = %g", f)
		}
	}
}

func TestUint64BitUniformity(t *testing.T) {
	r := New(99)
	const n = 20000
	var counts [64]int
	for i := 0; i < n; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.47 || frac > 0.53 {
			t.Errorf("bit %d set fraction %g, want ~0.5", b, frac)
		}
	}
}

func TestIntn(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("Intn value %d frequency %g, want ~0.1", v, frac)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestUnitSphereOnSurface(t *testing.T) {
	r := New(13)
	var sx, sy, sz float64
	for i := 0; i < 10000; i++ {
		x, y, z := r.UnitSphere()
		if d := math.Abs(math.Sqrt(x*x+y*y+z*z) - 1); d > 1e-12 {
			t.Fatalf("UnitSphere point off surface by %g", d)
		}
		sx += x
		sy += y
		sz += z
	}
	// Directional uniformity: the mean direction should vanish.
	for _, m := range []float64{sx, sy, sz} {
		if math.Abs(m/10000) > 0.02 {
			t.Errorf("UnitSphere mean component %g, want ~0", m/10000)
		}
	}
}

func TestInBallInside(t *testing.T) {
	r := New(17)
	inner := 0
	for i := 0; i < 10000; i++ {
		x, y, z := r.InBall()
		r2 := x*x + y*y + z*z
		if r2 > 1 {
			t.Fatalf("InBall point outside: r2=%g", r2)
		}
		if r2 < 0.5*0.5 {
			inner++
		}
	}
	// Volume fraction inside r=0.5 should be (0.5)^3 = 12.5%.
	frac := float64(inner) / 10000
	if frac < 0.10 || frac > 0.15 {
		t.Errorf("InBall inner-half fraction %g, want ~0.125", frac)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%50) + 1
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i
		}
		New(seed).Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, n)
		for _, v := range xs {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleMixes(t *testing.T) {
	// Over many shuffles of [0..9], element 0 should land everywhere.
	landed := make(map[int]bool)
	for seed := uint64(0); seed < 200; seed++ {
		xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		New(seed).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		for pos, v := range xs {
			if v == 0 {
				landed[pos] = true
			}
		}
	}
	if len(landed) != 10 {
		t.Errorf("element 0 landed in only %d/10 positions", len(landed))
	}
}
