package clc

import (
	"fmt"
	"strconv"
)

// Parse lexes and parses a translation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Functions: map[string]*Function{}}
	for p.peek().Kind != EOF {
		fn, err := p.function()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.Functions[fn.Name]; dup {
			return nil, fmt.Errorf("clc: %s: function %q redefined", fn.NameTok.Pos(), fn.Name)
		}
		prog.Functions[fn.Name] = fn
		prog.Order = append(prog.Order, fn.Name)
	}
	if len(prog.Kernels()) == 0 {
		return nil, fmt.Errorf("clc: %s: no __kernel function in program", p.peek().Pos())
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token  { return p.toks[p.pos] }
func (p *parser) peek2() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(t Token, format string, args ...any) error {
	return fmt.Errorf("clc: %s: %s", t.Pos(), fmt.Sprintf(format, args...))
}

func (p *parser) expect(k Kind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, p.errf(t, "expected %v, found %v %q", k, t.Kind, t.Text)
	}
	return p.advance(), nil
}

func (p *parser) accept(k Kind) bool {
	if p.peek().Kind == k {
		p.advance()
		return true
	}
	return false
}

// typeSpec parses [__global|__local] [const] (int|float|void) [*] [const].
func (p *parser) typeSpec() (Type, error) {
	var t Type
	switch p.peek().Kind {
	case KWGLOBAL, KWLOCAL:
		t.Space = p.advance().Kind
	}
	p.accept(KWCONST)
	switch p.peek().Kind {
	case KWINT, KWFLOAT, KWVOID:
		t.Base = p.advance().Kind
	case KWFLOAT4:
		p.advance()
		t.Base = KWFLOAT
		t.Vec4 = true
	default:
		return t, p.errf(p.peek(), "expected type, found %q", p.peek().Text)
	}
	if p.accept(STAR) {
		t.Pointer = true
		p.accept(KWCONST)
	}
	// A non-pointer __local type is only legal for in-kernel array
	// declarations; declStmt enforces the array size. Parameters are
	// checked in function().
	return t, nil
}

func (p *parser) function() (*Function, error) {
	fn := &Function{}
	if p.accept(KWKERNEL) {
		fn.IsKernel = true
	}
	rt, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	fn.RetType = rt
	if fn.IsKernel && !(rt.Base == KWVOID && !rt.Pointer) {
		return nil, p.errf(p.peek(), "__kernel functions must return void")
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	fn.Name = name.Text
	fn.NameTok = name
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for p.peek().Kind != RPAREN {
		pt, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		if pt.Space != 0 && !pt.Pointer {
			return nil, p.errf(p.peek(), "address-space qualifier on non-pointer parameter")
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if seen[pn.Text] {
			return nil, p.errf(pn, "duplicate parameter %q", pn.Text)
		}
		seen[pn.Text] = true
		fn.Params = append(fn.Params, Param{Type: pt, Name: pn.Text, Tok: pn})
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	b := &Block{}
	for p.peek().Kind != RBRACE {
		if p.peek().Kind == EOF {
			return nil, p.errf(p.peek(), "unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // }
	return b, nil
}

// blockOrStmt allows single statements as loop/if bodies by wrapping them.
func (p *parser) blockOrStmt() (*Block, error) {
	if p.peek().Kind == LBRACE {
		return p.block()
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &Block{Stmts: []Stmt{s}}, nil
}

func (p *parser) isTypeStart() bool {
	switch p.peek().Kind {
	case KWINT, KWFLOAT, KWFLOAT4, KWGLOBAL, KWLOCAL, KWCONST:
		return true
	}
	return false
}

func (p *parser) statement() (Stmt, error) {
	switch p.peek().Kind {
	case LBRACE:
		return p.block()
	case KWIF:
		return p.ifStmt()
	case KWFOR:
		return p.forStmt()
	case KWWHILE:
		p.advance()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.blockOrStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case KWRETURN:
		tok := p.advance()
		var v Expr
		if p.peek().Kind != SEMI {
			var err error
			v, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: v, Tok: tok}, nil
	case KWBREAK:
		tok := p.advance()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &BreakStmt{Tok: tok}, nil
	case KWCONTINUE:
		tok := p.advance()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ContinueStmt{Tok: tok}, nil
	}
	if p.isTypeStart() {
		return p.declStmt(true)
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

func (p *parser) declStmt(wantSemi bool) (Stmt, error) {
	tok := p.peek()
	t, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	if t.Base == KWVOID {
		return nil, p.errf(tok, "cannot declare a void variable")
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Type: t, Name: name.Text, Tok: tok}
	if p.peek().Kind == LBRACKET {
		p.advance()
		szTok, err := p.expect(INTLIT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBRACKET); err != nil {
			return nil, err
		}
		sz, err := strconv.Atoi(szTok.Text)
		if err != nil || sz <= 0 {
			return nil, p.errf(szTok, "bad array size %q", szTok.Text)
		}
		if t.Space != KWLOCAL || t.Pointer {
			return nil, p.errf(tok, "array declarations are supported for __local element types only")
		}
		d.ArraySize = sz
	} else if t.Space == KWLOCAL {
		return nil, p.errf(tok, "__local declarations need an array size")
	} else if t.Space == KWGLOBAL && !t.Pointer {
		return nil, p.errf(tok, "__global variables must be pointers")
	}
	if p.accept(ASSIGN) {
		if d.ArraySize > 0 {
			return nil, p.errf(tok, "array declarations cannot have initialisers")
		}
		d.Init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if wantSemi {
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	p.advance() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if p.accept(KWELSE) {
		if p.peek().Kind == KWIF {
			st.Else, err = p.ifStmt()
		} else {
			st.Else, err = p.blockOrStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) forStmt() (Stmt, error) {
	p.advance() // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	f := &ForStmt{}
	if p.peek().Kind != SEMI {
		if p.isTypeStart() {
			init, err := p.declStmt(false)
			if err != nil {
				return nil, err
			}
			f.Init = init
		} else {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Init = &ExprStmt{X: x}
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if p.peek().Kind != SEMI {
		var err error
		f.Cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if p.peek().Kind != RPAREN {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Post = &ExprStmt{X: x}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// Expression parsing, precedence climbing:
//
//	assign < ternary < || < && < == != < < <= > >= < + - < * / % < unary < postfix

func (p *parser) expr() (Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (Expr, error) {
	lhs, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	switch p.peek().Kind {
	case ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ:
		tok := p.advance()
		if !isLValue(lhs) {
			return nil, p.errf(tok, "left side of %q is not assignable", tok.Text)
		}
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{Op: tok.Kind, LHS: lhs, RHS: rhs, Tok: tok}, nil
	}
	return lhs, nil
}

func isLValue(e Expr) bool {
	switch x := e.(type) {
	case *Ident, *Index:
		return true
	case *Member:
		return isLValue(x.X)
	}
	return false
}

func (p *parser) ternaryExpr() (Expr, error) {
	c, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != QUESTION {
		return c, nil
	}
	tok := p.advance()
	a, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	b, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{C: c, A: a, B: b, Tok: tok}, nil
}

var binPrec = map[Kind]int{
	OROR:   1,
	ANDAND: 2,
	EQ:     3, NE: 3,
	LT: 4, LE: 4, GT: 4, GE: 4,
	PLUS: 5, MINUS: 5,
	STAR: 6, SLASH: 6, PERCENT: 6,
}

func (p *parser) binaryExpr(minPrec int) (Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.peek().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		tok := p.advance()
		rhs, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: tok.Kind, X: lhs, Y: rhs, Tok: tok}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	switch p.peek().Kind {
	case MINUS, NOT:
		tok := p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: tok.Kind, X: x, Tok: tok}, nil
	case LPAREN:
		// Cast: (int)x, (float)x; constructor: (float4)(a, b, c, d).
		if k := p.peek2().Kind; k == KWINT || k == KWFLOAT || k == KWFLOAT4 {
			// Look ahead for ')' after the type keyword.
			if p.toks[min(p.pos+2, len(p.toks)-1)].Kind == RPAREN {
				tok := p.advance() // (
				base := p.advance().Kind
				p.advance() // )
				if base == KWFLOAT4 {
					if _, err := p.expect(LPAREN); err != nil {
						return nil, err
					}
					ctor := &Call{Name: "(make)float4", Tok: tok}
					for p.peek().Kind != RPAREN {
						arg, err := p.expr()
						if err != nil {
							return nil, err
						}
						ctor.Args = append(ctor.Args, arg)
						if !p.accept(COMMA) {
							break
						}
					}
					if _, err := p.expect(RPAREN); err != nil {
						return nil, err
					}
					if len(ctor.Args) != 4 && len(ctor.Args) != 1 {
						return nil, p.errf(tok, "(float4)(...) takes 4 components or 1 broadcast value")
					}
					return ctor, nil
				}
				x, err := p.unaryExpr()
				if err != nil {
					return nil, err
				}
				name := "int"
				if base == KWFLOAT {
					name = "float"
				}
				return &Call{Name: "(cast)" + name, Args: []Expr{x}, Tok: tok}, nil
			}
		}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case LBRACKET:
			tok := p.advance()
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return nil, err
			}
			x = &Index{X: x, I: i, Tok: tok}
		case DOT:
			tok := p.advance()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			switch name.Text {
			case "x", "y", "z", "w":
			default:
				return nil, p.errf(name, "unknown member %q (float4 has .x .y .z .w)", name.Text)
			}
			x = &Member{X: x, Name: name.Text, Tok: tok}
		case PLUSPLUS, MINUSMINU:
			tok := p.advance()
			if !isLValue(x) {
				return nil, p.errf(tok, "%q needs an assignable operand", tok.Text)
			}
			x = &IncDec{Op: tok.Kind, X: x, Tok: tok}
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case IDENT:
		p.advance()
		if p.peek().Kind == LPAREN {
			p.advance()
			call := &Call{Name: t.Text, Tok: t}
			for p.peek().Kind != RPAREN {
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(COMMA) {
					break
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Tok: t}, nil
	case INTLIT:
		p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 32)
		if err != nil {
			return nil, p.errf(t, "bad int literal %q: %v", t.Text, err)
		}
		return &IntLit{Value: int32(v), Tok: t}, nil
	case FLOATLIT:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 32)
		if err != nil {
			return nil, p.errf(t, "bad float literal %q: %v", t.Text, err)
		}
		return &FloatLit{Value: float32(v), Tok: t}, nil
	case LPAREN:
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf(t, "unexpected %v %q in expression", t.Kind, t.Text)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
