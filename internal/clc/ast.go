package clc

// Type is the subset's type system: scalars, the float4 vector, and
// address-space-qualified pointers to them.
type Type struct {
	// Base is KWINT, KWFLOAT or KWVOID.
	Base Kind
	// Vec4 marks the float4 vector type (Base is KWFLOAT).
	Vec4 bool
	// Pointer marks pointer-to-Base.
	Pointer bool
	// Space is KWGLOBAL or KWLOCAL for pointers, 0 otherwise.
	Space Kind
}

// String renders the type for error messages.
func (t Type) String() string {
	s := ""
	switch t.Space {
	case KWGLOBAL:
		s = "__global "
	case KWLOCAL:
		s = "__local "
	}
	switch {
	case t.Vec4:
		s += "float4"
	case t.Base == KWINT:
		s += "int"
	case t.Base == KWFLOAT:
		s += "float"
	case t.Base == KWVOID:
		s += "void"
	}
	if t.Pointer {
		s += "*"
	}
	return s
}

// Expr is an expression node.
type Expr interface{ exprNode() }

// Ident references a variable or parameter.
type Ident struct {
	Name string
	Tok  Token
}

// IntLit is an integer literal.
type IntLit struct {
	Value int32
	Tok   Token
}

// FloatLit is a float literal.
type FloatLit struct {
	Value float32
	Tok   Token
}

// Unary is -x or !x.
type Unary struct {
	Op  Kind
	X   Expr
	Tok Token
}

// Binary is x op y for arithmetic, comparison and logical operators
// (&& and || short-circuit).
type Binary struct {
	Op   Kind
	X, Y Expr
	Tok  Token
}

// Cond is the ternary c ? a : b.
type Cond struct {
	C, A, B Expr
	Tok     Token
}

// Index is p[i] on a pointer.
type Index struct {
	X   Expr
	I   Expr
	Tok Token
}

// Member accesses a float4 component: x.x, x.y, x.z or x.w.
type Member struct {
	X    Expr
	Name string
	Tok  Token
}

// Call invokes a builtin or a program-defined helper function.
type Call struct {
	Name string
	Args []Expr
	Tok  Token
}

// Assign is lhs op rhs where op is =, +=, -=, *= or /=. Lhs is an Ident or
// an Index.
type Assign struct {
	Op       Kind
	LHS, RHS Expr
	Tok      Token
}

// IncDec is x++ or x-- (statement position only).
type IncDec struct {
	Op  Kind // PLUSPLUS or MINUSMINU
	X   Expr
	Tok Token
}

func (*Ident) exprNode()    {}
func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Cond) exprNode()     {}
func (*Index) exprNode()    {}
func (*Member) exprNode()   {}
func (*Call) exprNode()     {}
func (*Assign) exprNode()   {}
func (*IncDec) exprNode()   {}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// DeclStmt declares one local variable with an optional initialiser, or —
// with ArraySize > 0 and a __local type — an in-kernel local-memory array
// (the OpenCL idiom "__local float tile[256];").
type DeclStmt struct {
	Type      Type
	Name      string
	ArraySize int  // elements; 0 for scalars
	Init      Expr // may be nil
	Tok       Token
}

// ExprStmt evaluates an expression (assignment, call, inc/dec).
type ExprStmt struct {
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else Stmt // *Block, *IfStmt or nil
}

// ForStmt is for(init; cond; post) body. Any clause may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Stmt // ExprStmt
	Body *Block
}

// WhileStmt is while(cond) body.
type WhileStmt struct {
	Cond Expr
	Body *Block
}

// ReturnStmt returns from the current function (value may be nil).
type ReturnStmt struct {
	Value Expr
	Tok   Token
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Tok Token }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Tok Token }

// Block is { stmts }.
type Block struct {
	Stmts []Stmt
}

func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*Block) stmtNode()        {}

// Param is a function parameter.
type Param struct {
	Type Type
	Name string
	Tok  Token
}

// Function is a kernel or helper function definition.
type Function struct {
	IsKernel bool
	RetType  Type
	Name     string
	NameTok  Token
	Params   []Param
	Body     *Block
}

// Program is a parsed translation unit.
type Program struct {
	Functions map[string]*Function
	// Order preserves the source order for listings.
	Order []string
}

// Kernels lists the __kernel functions in source order.
func (p *Program) Kernels() []*Function {
	var out []*Function
	for _, name := range p.Order {
		if f := p.Functions[name]; f.IsKernel {
			out = append(out, f)
		}
	}
	return out
}
