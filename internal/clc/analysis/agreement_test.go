package analysis

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/clc"
	"repro/internal/gpusim"
)

// buildCorpusArgs materialises a corpus entry's launch arguments on a device.
func buildCorpusArgs(d *gpusim.Device, e CorpusEntry) ([]clc.Arg, error) {
	args := make([]clc.Arg, len(e.Args))
	for i, a := range e.Args {
		switch a.Kind {
		case "fbuf":
			args[i] = clc.BufArg(d.NewBufferF32(fmt.Sprintf("%s.arg%d", e.Name, i), a.N))
		case "ibuf":
			args[i] = clc.BufArg(d.NewBufferI32(fmt.Sprintf("%s.arg%d", e.Name, i), a.N))
		case "int":
			args[i] = clc.IntArg(a.Int)
		case "float":
			args[i] = clc.FloatArg(a.Float)
		case "local":
			args[i] = clc.LocalArg(a.N)
		default:
			return nil, fmt.Errorf("unknown corpus arg kind %q", a.Kind)
		}
	}
	return args, nil
}

// TestCorpusCheckedAgreement launches every dynamic corpus entry under the
// checked interpreter and requires a trap naming the same defect the static
// analyzer reported — the analyzer and the checked mode must agree on what
// is wrong with each kernel.
func TestCorpusCheckedAgreement(t *testing.T) {
	for _, e := range Corpus() {
		if !e.Dynamic {
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			dev := gpusim.MustNewDevice(gpusim.TestDevice())
			prog, err := clc.Parse(e.Src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			args, err := buildCorpusArgs(dev, e)
			if err != nil {
				t.Fatal(err)
			}
			kf, lds, err := clc.BindChecked(prog, e.Kernel, args)
			if err != nil {
				t.Fatalf("bind: %v", err)
			}
			_, err = dev.Launch(e.Kernel, kf, gpusim.LaunchParams{
				Global: e.Global, Local: e.Local, LDSFloats: lds,
			})
			if err == nil {
				t.Fatalf("checked launch of %s did not trap (static rule %s)", e.Name, e.Rule)
			}
			if !strings.Contains(err.Error(), e.TrapSubstring) {
				t.Fatalf("trap %q does not mention %q", err, e.TrapSubstring)
			}
		})
	}
}

// TestCheckedCleanKernel: the canonical correctly-synchronised staging
// kernel runs to completion under the checked interpreter — no false traps
// from barrier-phase tracking on a clean kernel.
func TestCheckedCleanKernel(t *testing.T) {
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	prog, err := clc.Parse(cleanStaged)
	if err != nil {
		t.Fatal(err)
	}
	src := dev.NewBufferF32("src", 8)
	dst := dev.NewBufferF32("dst", 8)
	for i, f := range src.HostF32() {
		src.HostF32()[i] = f + float32(i)
	}
	kf, lds, err := clc.BindChecked(prog, "staged", []clc.Arg{
		clc.BufArg(src), clc.BufArg(dst), clc.LocalArg(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch("staged", kf, gpusim.LaunchParams{Global: 8, Local: 4, LDSFloats: lds}); err != nil {
		t.Fatalf("checked launch of clean kernel trapped: %v", err)
	}
	// Each group's work-items all see the group sum.
	want := []float32{0 + 1 + 2 + 3, 0, 0, 0, 4 + 5 + 6 + 7}
	got := dst.HostF32()
	if got[0] != want[0] || got[4] != want[4] {
		t.Fatalf("dst = %v", got)
	}
}
