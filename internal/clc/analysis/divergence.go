package analysis

import (
	"fmt"

	"repro/internal/clc"
)

// Info carries the shared dataflow facts the passes consume: which values
// are work-item-divergent, the affine decomposition of index expressions,
// and per-helper summaries (does it contain a barrier, does it touch a
// passed-in __local buffer).
//
// Divergence is computed flow-insensitively to a fixpoint: a variable is
// divergent if any assignment anywhere in the function could make it so.
// That is conservative (a variable divergent in one region poisons all
// regions) but sound for the safety rules, and precise enough that all four
// shipped plan kernels analyze cleanly.
type Info struct {
	prog *clc.Program
	fn   *clc.Function
	// div marks work-item-divergent variables of the kernel.
	div map[string]bool
	// gid marks variables derived from get_global_id.
	gid map[string]bool
	// assigns counts assignments per variable (decl-with-init, =, op=, ++/--).
	assigns map[string]int
	// localBufs maps names that denote __local storage (pointer params and
	// in-kernel array declarations) to true.
	localBufs map[string]bool
	// globalBufs maps __global pointer parameter names to true.
	globalBufs map[string]bool
	// fnBarrier marks program functions that (transitively) call barrier().
	fnBarrier map[string]bool
	// affEnv is the per-variable affine binding (see affine).
	affEnv map[string]affine
}

// laneBuiltins are the work-item-divergent id builtins. get_group_id and the
// size builtins return the same value for every work-item of a group, which
// is the uniformity that matters for barriers and __local races.
var laneBuiltins = map[string]bool{
	"get_global_id": true,
	"get_local_id":  true,
}

var uniformBuiltins = map[string]bool{
	"get_group_id":    true,
	"get_local_size":  true,
	"get_global_size": true,
	"get_num_groups":  true,
}

// computeInfo builds the dataflow facts for one kernel.
func computeInfo(prog *clc.Program, fn *clc.Function) *Info {
	info := &Info{
		prog:       prog,
		fn:         fn,
		div:        map[string]bool{},
		gid:        map[string]bool{},
		assigns:    map[string]int{},
		localBufs:  map[string]bool{},
		globalBufs: map[string]bool{},
		fnBarrier:  map[string]bool{},
		affEnv:     map[string]affine{},
	}
	for _, prm := range fn.Params {
		if prm.Type.Pointer {
			switch prm.Type.Space {
			case clc.KWLOCAL:
				info.localBufs[prm.Name] = true
			case clc.KWGLOBAL:
				info.globalBufs[prm.Name] = true
			}
		}
	}
	walkStmts(fn.Body, func(s clc.Stmt) {
		if d, ok := s.(*clc.DeclStmt); ok && d.ArraySize > 0 && d.Type.Space == clc.KWLOCAL {
			info.localBufs[d.Name] = true
		}
	})
	// Helper barrier summaries, to a fixpoint over the call graph.
	for changed := true; changed; {
		changed = false
		for _, name := range prog.Order {
			f := prog.Functions[name]
			if info.fnBarrier[name] {
				continue
			}
			has := false
			walkStmts(f.Body, func(s clc.Stmt) {
				walkStmtExprs(s, func(e clc.Expr) {
					if c, ok := e.(*clc.Call); ok {
						if c.Name == "barrier" || info.fnBarrier[c.Name] {
							has = true
						}
					}
				})
			})
			if has {
				info.fnBarrier[name] = true
				changed = true
			}
		}
	}
	info.countAssigns()
	info.divergenceFixpoint()
	info.buildAffineEnv()
	return info
}

// countAssigns tallies definitions per variable name in the kernel body.
func (in *Info) countAssigns() {
	walkStmts(in.fn.Body, func(s clc.Stmt) {
		if d, ok := s.(*clc.DeclStmt); ok && d.ArraySize == 0 {
			in.assigns[d.Name]++
		}
		walkStmtExprs(s, func(e clc.Expr) {
			switch x := e.(type) {
			case *clc.Assign:
				if id, ok := rootIdent(x.LHS); ok {
					in.assigns[id]++
				}
			case *clc.IncDec:
				if id, ok := rootIdent(x.X); ok {
					in.assigns[id]++
				}
			}
		})
	})
}

// rootIdent returns the variable name at the root of an lvalue (x, x.y —
// but not p[i], whose target is storage, not a variable).
func rootIdent(e clc.Expr) (string, bool) {
	switch x := e.(type) {
	case *clc.Ident:
		return x.Name, true
	case *clc.Member:
		return rootIdent(x.X)
	}
	return "", false
}

// divergenceFixpoint iterates the whole body until the divergent-variable
// set stops growing (the lattice is monotone, so this terminates).
func (in *Info) divergenceFixpoint() {
	for changed := true; changed; {
		changed = false
		mark := func(name string, e clc.Expr) {
			if !in.div[name] && in.ExprDivergent(e) {
				in.div[name] = true
				changed = true
			}
			if !in.gid[name] && in.exprGID(e) {
				in.gid[name] = true
				changed = true
			}
		}
		walkStmts(in.fn.Body, func(s clc.Stmt) {
			if d, ok := s.(*clc.DeclStmt); ok && d.Init != nil {
				mark(d.Name, d.Init)
			}
			walkStmtExprs(s, func(e clc.Expr) {
				if a, ok := e.(*clc.Assign); ok {
					if id, ok := rootIdent(a.LHS); ok {
						mark(id, a.RHS)
					}
				}
			})
		})
	}
}

// ExprDivergent reports whether an expression's value can differ between
// work-items of one group.
func (in *Info) ExprDivergent(e clc.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *clc.IntLit, *clc.FloatLit:
		return false
	case *clc.Ident:
		return in.div[x.Name]
	case *clc.Unary:
		return in.ExprDivergent(x.X)
	case *clc.Binary:
		return in.ExprDivergent(x.X) || in.ExprDivergent(x.Y)
	case *clc.Cond:
		return in.ExprDivergent(x.C) || in.ExprDivergent(x.A) || in.ExprDivergent(x.B)
	case *clc.Index:
		// A load from a uniform address yields the same value in every lane;
		// only a divergent index (or divergent pointer) diverges the value.
		return in.ExprDivergent(x.X) || in.ExprDivergent(x.I)
	case *clc.Member:
		return in.ExprDivergent(x.X)
	case *clc.Assign:
		return in.ExprDivergent(x.RHS)
	case *clc.IncDec:
		return in.ExprDivergent(x.X)
	case *clc.Call:
		if laneBuiltins[x.Name] {
			return true
		}
		if uniformBuiltins[x.Name] || x.Name == "barrier" {
			return false
		}
		// Builtins and program helpers: divergent iff any argument is
		// (helpers are pure over their arguments in this subset — they have
		// no global state to read).
		for _, a := range x.Args {
			if in.ExprDivergent(a) {
				return true
			}
		}
		return false
	}
	return true
}

// exprGID reports whether the expression derives from get_global_id.
func (in *Info) exprGID(e clc.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *clc.IntLit, *clc.FloatLit:
		return false
	case *clc.Ident:
		return in.gid[x.Name]
	case *clc.Unary:
		return in.exprGID(x.X)
	case *clc.Binary:
		return in.exprGID(x.X) || in.exprGID(x.Y)
	case *clc.Cond:
		return in.exprGID(x.C) || in.exprGID(x.A) || in.exprGID(x.B)
	case *clc.Index:
		return in.exprGID(x.I)
	case *clc.Member:
		return in.exprGID(x.X)
	case *clc.Assign:
		return in.exprGID(x.RHS)
	case *clc.IncDec:
		return in.exprGID(x.X)
	case *clc.Call:
		if x.Name == "get_global_id" {
			return true
		}
		if uniformBuiltins[x.Name] || laneBuiltins[x.Name] {
			return false
		}
		for _, a := range x.Args {
			if in.exprGID(a) {
				return true
			}
		}
		return false
	}
	return false
}

// IsLocalBuf reports whether e denotes __local storage.
func (in *Info) IsLocalBuf(e clc.Expr) (string, bool) {
	if id, ok := e.(*clc.Ident); ok && in.localBufs[id.Name] {
		return id.Name, true
	}
	return "", false
}

// IsGlobalBuf reports whether e denotes a __global pointer parameter.
func (in *Info) IsGlobalBuf(e clc.Expr) (string, bool) {
	if id, ok := e.(*clc.Ident); ok && in.globalBufs[id.Name] {
		return id.Name, true
	}
	return "", false
}

// FnHasBarrier reports whether calling the named program function executes a
// barrier (transitively).
func (in *Info) FnHasBarrier(name string) bool { return in.fnBarrier[name] }

// affine is the decomposition of an integer index expression into
//
//	coeff*lane + sym + off
//
// where lane identifies a work-item id builtin ("get_local_id" or
// "get_global_id"; "" when the expression is lane-independent), sym is the
// canonical rendering of the residual uniform part ("" when absent) and off
// is a constant. Two affine forms over the same lane/sym base are
// comparable: lanes a≠b collide on coeff*a+o1 == coeff*b+o2 only when coeff
// divides o1-o2.
//
// Expressions that do not fit (division, data-dependent values, variables
// assigned more than once) degrade to wild: wildUniform keeps the canonical
// string as identity, wildDivergent means "any lane may touch any address".
type affine struct {
	kind  affKind
	lane  string // lane builtin name; "" when laneless
	coeff int32
	sym   string // canonical uniform residual; "" when absent
	off   int32
}

type affKind int

const (
	affExact affKind = iota
	affWildUniform
	affWildDivergent
)

func (a affine) String() string {
	switch a.kind {
	case affWildUniform:
		return "uniform{" + a.sym + "}"
	case affWildDivergent:
		return "divergent{?}"
	}
	return fmt.Sprintf("%d*%s + %q + %d", a.coeff, a.lane, a.sym, a.off)
}

// laneDependent reports whether the index can differ between lanes.
func (a affine) laneDependent() bool {
	return a.kind == affWildDivergent || (a.kind == affExact && a.coeff != 0)
}

// buildAffineEnv binds each single-assignment variable to the affine form of
// its initialiser; everything else becomes symbolic (uniform vars keep their
// name as identity, divergent multi-assigned vars go wild).
func (in *Info) buildAffineEnv() {
	// Iterate to propagate through chains (j = t*p + l uses l's binding);
	// two passes suffice for acyclic chains, a few more are harmless.
	for pass := 0; pass < 4; pass++ {
		walkStmts(in.fn.Body, func(s clc.Stmt) {
			d, ok := s.(*clc.DeclStmt)
			if !ok || d.ArraySize > 0 || d.Init == nil {
				return
			}
			if d.Type.Base != clc.KWINT || d.Type.Pointer {
				return
			}
			if in.assigns[d.Name] == 1 {
				in.affEnv[d.Name] = in.exprAffine(d.Init)
			}
		})
	}
}

// varAffine returns the affine binding of a variable reference.
func (in *Info) varAffine(name string) affine {
	if a, ok := in.affEnv[name]; ok {
		return a
	}
	if in.div[name] {
		return affine{kind: affWildDivergent}
	}
	return affine{kind: affExact, sym: name}
}

// exprAffine decomposes an index expression. It is exact for the linear
// forms real kernels use (4*l, 4*l+1, 3*(l+s), t*p+l, ...) and degrades to
// wild otherwise.
func (in *Info) exprAffine(e clc.Expr) affine {
	wild := func() affine {
		if in.ExprDivergent(e) {
			return affine{kind: affWildDivergent}
		}
		return affine{kind: affWildUniform, sym: clc.ExprString(e)}
	}
	switch x := e.(type) {
	case *clc.IntLit:
		return affine{kind: affExact, off: x.Value}
	case *clc.Ident:
		return in.varAffine(x.Name)
	case *clc.Call:
		if laneBuiltins[x.Name] {
			return affine{kind: affExact, lane: x.Name, coeff: 1}
		}
		if uniformBuiltins[x.Name] {
			return affine{kind: affExact, sym: clc.ExprString(e)}
		}
		return wild()
	case *clc.Unary:
		if x.Op == clc.MINUS {
			a := in.exprAffine(x.X)
			if a.kind == affExact && a.sym == "" {
				return affine{kind: affExact, lane: a.lane, coeff: -a.coeff, off: -a.off}
			}
		}
		return wild()
	case *clc.Binary:
		switch x.Op {
		case clc.PLUS, clc.MINUS:
			a := in.exprAffine(x.X)
			b := in.exprAffine(x.Y)
			if a.kind != affExact || b.kind != affExact {
				return wild()
			}
			if a.lane != "" && b.lane != "" && a.lane != b.lane {
				return wild()
			}
			sign := int32(1)
			if x.Op == clc.MINUS {
				sign = -1
			}
			lane := a.lane
			if lane == "" {
				lane = b.lane
			}
			// A missing lane term has coeff 0, so the sum is direct.
			out := affine{kind: affExact, lane: lane, coeff: a.coeff + sign*b.coeff, off: a.off + sign*b.off}
			if out.coeff == 0 {
				out.lane = ""
			}
			switch {
			case a.sym != "" && b.sym != "":
				out.sym = "(" + a.sym + string(opRune(x.Op)) + b.sym + ")"
			case a.sym != "":
				out.sym = a.sym
			case b.sym != "":
				if sign < 0 {
					out.sym = "(-" + b.sym + ")"
				} else {
					out.sym = b.sym
				}
			}
			return out
		case clc.STAR:
			if c, ok := x.X.(*clc.IntLit); ok {
				return scaleAffine(in.exprAffine(x.Y), c.Value, wild)
			}
			if c, ok := x.Y.(*clc.IntLit); ok {
				return scaleAffine(in.exprAffine(x.X), c.Value, wild)
			}
			a := in.exprAffine(x.X)
			b := in.exprAffine(x.Y)
			if a.kind == affExact && a.lane == "" && b.kind == affExact && b.lane == "" {
				// Product of uniforms: keep the whole expression as identity.
				return affine{kind: affExact, sym: clc.ExprString(e)}
			}
			return wild()
		}
		return wild()
	}
	return wild()
}

func scaleAffine(a affine, c int32, wild func() affine) affine {
	if a.kind != affExact {
		return wild()
	}
	out := affine{kind: affExact, lane: a.lane, coeff: a.coeff * c, off: a.off * c}
	if a.sym != "" {
		out.sym = fmt.Sprintf("(%d*%s)", c, a.sym)
	}
	return out
}

func opRune(k clc.Kind) rune {
	if k == clc.MINUS {
		return '-'
	}
	return '+'
}

// mayConflict reports whether two accesses with the given index forms can
// touch the same address from different work-items. It is conservative:
// "unknown" means true.
func mayConflict(a, b affine) bool {
	// Two lane-independent identical addresses are touched by *all* lanes —
	// that is a conflict when one side writes (handled by the caller passing
	// accesses where at least one is a write).
	if a.kind == affWildDivergent || b.kind == affWildDivergent {
		return true
	}
	if a.kind == affWildUniform || b.kind == affWildUniform {
		// Uniform but unanalyzable: same canonical string means same
		// address for every lane — a cross-lane conflict. Different strings
		// are unknown — conservative conflict.
		return true
	}
	// Both exact.
	if a.lane == "" && b.lane == "" {
		// Uniform addresses: conflict iff they can be equal. Identical
		// sym+off is definitely equal (all lanes touch one slot). Same sym,
		// different off never collides. Different syms: unknown.
		if a.sym == b.sym {
			return a.off == b.off
		}
		return true
	}
	if a.lane != b.lane || a.sym != b.sym || a.coeff != b.coeff {
		// Mixed lane bases, unequal strides, or different uniform residuals:
		// cannot prove disjointness.
		return true
	}
	// coeff*l1 + off1 == coeff*l2 + off2 with l1 != l2 requires
	// coeff | (off1-off2) with a non-zero quotient.
	d := a.off - b.off
	if d == 0 {
		// Same per-lane address: only the owning lane touches it.
		return false
	}
	if a.coeff == 0 {
		return false // same sym, different constant offsets: disjoint slots
	}
	return d%a.coeff == 0
}

// walkStmts visits every statement in a block, depth-first.
func walkStmts(b *clc.Block, visit func(clc.Stmt)) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		visitStmt(s, visit)
	}
}

func visitStmt(s clc.Stmt, visit func(clc.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch x := s.(type) {
	case *clc.Block:
		walkStmts(x, visit)
	case *clc.IfStmt:
		walkStmts(x.Then, visit)
		visitStmt(x.Else, visit)
	case *clc.ForStmt:
		visitStmt(x.Init, visit)
		visitStmt(x.Post, visit)
		walkStmts(x.Body, visit)
	case *clc.WhileStmt:
		walkStmts(x.Body, visit)
	}
}

// walkStmtExprs visits the expressions attached directly to one statement
// (not those of nested statements).
func walkStmtExprs(s clc.Stmt, visit func(clc.Expr)) {
	switch x := s.(type) {
	case *clc.DeclStmt:
		walkExpr(x.Init, visit)
	case *clc.ExprStmt:
		walkExpr(x.X, visit)
	case *clc.IfStmt:
		walkExpr(x.Cond, visit)
	case *clc.ForStmt:
		walkExpr(x.Cond, visit)
	case *clc.WhileStmt:
		walkExpr(x.Cond, visit)
	case *clc.ReturnStmt:
		walkExpr(x.Value, visit)
	}
}

// walkExpr visits an expression tree, parent first.
func walkExpr(e clc.Expr, visit func(clc.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *clc.Unary:
		walkExpr(x.X, visit)
	case *clc.Binary:
		walkExpr(x.X, visit)
		walkExpr(x.Y, visit)
	case *clc.Cond:
		walkExpr(x.C, visit)
		walkExpr(x.A, visit)
		walkExpr(x.B, visit)
	case *clc.Index:
		walkExpr(x.X, visit)
		walkExpr(x.I, visit)
	case *clc.Member:
		walkExpr(x.X, visit)
	case *clc.Call:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	case *clc.Assign:
		walkExpr(x.LHS, visit)
		walkExpr(x.RHS, visit)
	case *clc.IncDec:
		walkExpr(x.X, visit)
	}
}
