package analysis

import (
	"fmt"

	"repro/internal/clc"
)

// runLocalRace detects cross-work-item races on __local buffers: two
// accesses to the same slot from different lanes with no barrier between
// them, at least one a write. The kernel body is linearised into a sequence
// of access and barrier events — both if-branches concatenate (lanes of one
// group may take either), loops unroll twice (to catch wrap-around races
// from iteration N into N+1) — and every event pair in the same barrier
// phase is tested with the affine disjointness check (mayConflict). An
// access guarded by a single-lane condition (if (l == 0) ...) conflicts
// only with accesses under a different guard.
//
// This is the PR 2 bug class: a staging kernel that filled a __local tile
// and read it back without barrier(CLK_LOCAL_MEM_FENCE) in between.
func runLocalRace(ctx *Context) []Diagnostic {
	events := linearize(ctx, ctx.Fn.Body, "")
	var diags []Diagnostic
	seen := map[int]bool{} // dedupe per source line

	report := func(ev accessEvent, msg string) {
		if seen[ev.tok.Line] {
			return
		}
		seen[ev.tok.Line] = true
		diags = append(diags, Diagnostic{Tok: ev.tok, Message: msg})
	}

	// Self-races: a write to a lane-independent __local slot that is not
	// restricted to a single lane is performed by every participating
	// work-item at once.
	for _, ev := range events {
		if !ev.barrier && ev.write && !ev.aff.laneDependent() && ev.guard == "" {
			report(ev, fmt.Sprintf(
				"every work-item writes the same __local %q slot %s in the same barrier phase",
				ev.buf, describeIndex(ev.aff)))
		}
	}

	for i := 0; i < len(events); i++ {
		if events[i].barrier {
			continue
		}
		for j := i + 1; j < len(events); j++ {
			if events[j].barrier {
				break // a barrier orders everything before it against everything after
			}
			a, b := events[i], events[j]
			if a.buf != b.buf || (!a.write && !b.write) {
				continue
			}
			if a.guard != "" && a.guard == b.guard {
				continue // both restricted to the same single lane
			}
			if !mayConflict(a.aff, b.aff) {
				continue
			}
			at := b // report at the later event, preferring the write
			if a.write && !b.write {
				at = a
			}
			report(at, fmt.Sprintf(
				"__local %q: %s at %s may conflict with %s at %s with no barrier between",
				a.buf, accessKind(b), b.tok.Pos(), accessKind(a), a.tok.Pos()))
		}
	}
	return diags
}

// accessEvent is one element of the linearised kernel: either a barrier or
// a single __local access.
type accessEvent struct {
	barrier bool
	buf     string
	aff     affine
	write   bool
	tok     clc.Token
	// guard is the canonical single-lane condition dominating the access
	// ("" when the access is performed by multiple lanes).
	guard string
}

func accessKind(e accessEvent) string {
	if e.write {
		return "write"
	}
	return "read"
}

func describeIndex(a affine) string {
	if a.kind == affWildUniform {
		return "(" + a.sym + ")"
	}
	if a.sym != "" {
		return "(" + a.sym + ")"
	}
	return fmt.Sprintf("[%d]", a.off)
}

// linearize flattens stmts into the event sequence. guard carries the
// innermost dominating single-lane condition.
func linearize(ctx *Context, b *clc.Block, guard string) []accessEvent {
	var out []accessEvent
	if b == nil {
		return out
	}
	for _, s := range b.Stmts {
		out = append(out, linearizeStmt(ctx, s, guard)...)
	}
	return out
}

func linearizeStmt(ctx *Context, s clc.Stmt, guard string) []accessEvent {
	var out []accessEvent
	switch x := s.(type) {
	case nil:
	case *clc.Block:
		out = linearize(ctx, x, guard)
	case *clc.DeclStmt:
		out = exprEvents(ctx, x.Init, guard)
	case *clc.ExprStmt:
		out = exprEvents(ctx, x.X, guard)
	case *clc.ReturnStmt:
		out = exprEvents(ctx, x.Value, guard)
	case *clc.IfStmt:
		out = exprEvents(ctx, x.Cond, guard)
		g := guard
		if key, ok := singleLaneCond(ctx, x.Cond); ok {
			g = key
		}
		// Lanes of one group may take either branch, so the branches'
		// accesses coexist in the same barrier phase: concatenate.
		out = append(out, linearize(ctx, x.Then, g)...)
		out = append(out, linearizeStmt(ctx, x.Else, guard)...)
	case *clc.ForStmt:
		out = linearizeStmt(ctx, x.Init, guard)
		one := exprEvents(ctx, x.Cond, guard)
		one = append(one, linearize(ctx, x.Body, guard)...)
		one = append(one, linearizeStmt(ctx, x.Post, guard)...)
		out = append(out, one...)
		out = append(out, one...) // second unroll: wrap-around races
	case *clc.WhileStmt:
		one := exprEvents(ctx, x.Cond, guard)
		one = append(one, linearize(ctx, x.Body, guard)...)
		out = append(out, one...)
		out = append(out, one...)
	}
	return out
}

// singleLaneCond recognises conditions that restrict execution to exactly
// one work-item of the group: lane == uniform (either side). The canonical
// condition string is the guard key — two accesses under the same key run
// on the same lane and cannot race with each other.
func singleLaneCond(ctx *Context, cond clc.Expr) (string, bool) {
	b, ok := cond.(*clc.Binary)
	if !ok || b.Op != clc.EQ {
		return "", false
	}
	lx := ctx.Info.exprAffine(b.X)
	ly := ctx.Info.exprAffine(b.Y)
	xLane := lx.kind == affExact && lx.lane != "" && lx.coeff != 0
	yLane := ly.kind == affExact && ly.lane != "" && ly.coeff != 0
	if xLane && !ctx.Info.ExprDivergent(b.Y) || yLane && !ctx.Info.ExprDivergent(b.X) {
		return clc.ExprString(cond), true
	}
	return "", false
}

// exprEvents extracts barrier and __local-access events from one
// expression, in evaluation order (reads of an assignment before its
// write).
func exprEvents(ctx *Context, e clc.Expr, guard string) []accessEvent {
	var out []accessEvent
	var emit func(e clc.Expr, asWrite bool)
	emit = func(e clc.Expr, asWrite bool) {
		switch x := e.(type) {
		case nil:
		case *clc.Ident, *clc.IntLit, *clc.FloatLit:
		case *clc.Unary:
			emit(x.X, false)
		case *clc.Binary:
			emit(x.X, false)
			emit(x.Y, false)
		case *clc.Cond:
			emit(x.C, false)
			emit(x.A, false)
			emit(x.B, false)
		case *clc.Member:
			emit(x.X, asWrite)
		case *clc.Index:
			emit(x.I, false)
			if buf, ok := ctx.Info.IsLocalBuf(x.X); ok {
				out = append(out, accessEvent{
					buf: buf, aff: ctx.Info.exprAffine(x.I),
					write: asWrite, tok: x.Tok, guard: guard,
				})
			} else {
				emit(x.X, false)
			}
		case *clc.Call:
			if x.Name == "barrier" {
				out = append(out, accessEvent{barrier: true, tok: x.Tok})
				return
			}
			for i, a := range x.Args {
				emit(a, false)
				// A helper receiving a __local pointer may touch any slot:
				// model the call as a wild read+write of that buffer.
				if buf, ok := ctx.Info.IsLocalBuf(a); ok {
					if fn, ok := ctx.Prog.Functions[x.Name]; ok && i < len(fn.Params) {
						tok := x.Tok
						out = append(out,
							accessEvent{buf: buf, aff: affine{kind: affWildDivergent}, write: false, tok: tok, guard: guard},
							accessEvent{buf: buf, aff: affine{kind: affWildDivergent}, write: true, tok: tok, guard: guard})
					}
				}
			}
			if ctx.Info.FnHasBarrier(x.Name) {
				out = append(out, accessEvent{barrier: true, tok: x.Tok})
			}
		case *clc.Assign:
			if x.Op != clc.ASSIGN {
				emit(x.LHS, false) // op= reads the target first
			}
			emit(x.RHS, false)
			emit(x.LHS, true)
		case *clc.IncDec:
			emit(x.X, false)
			emit(x.X, true)
		}
	}
	emit(e, false)
	return out
}
