package analysis

import (
	"strings"
	"testing"
)

// TestCorpusStatic checks that every known-bad kernel is flagged by the
// expected rule at the expected token position.
func TestCorpusStatic(t *testing.T) {
	for _, e := range Corpus() {
		t.Run(e.Name, func(t *testing.T) {
			res, err := Analyze(e.Src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, d := range res.Active() {
				if d.Rule == e.Rule && d.Tok.Line == e.WantLine && d.Tok.Col == e.WantCol {
					return
				}
			}
			t.Errorf("no %s finding at %d:%d; got:", e.Rule, e.WantLine, e.WantCol)
			for _, d := range res.Diags {
				t.Errorf("  %s", d)
			}
		})
	}
}

// TestCorpusSeverities checks the severity policy: race and barrier defects
// are errors (build-rejecting), the rest warnings.
func TestCorpusSeverities(t *testing.T) {
	wantErr := map[string]bool{"localrace": true, "barrierdiverge": true}
	for _, e := range Corpus() {
		res, err := Analyze(e.Src)
		if err != nil {
			t.Fatalf("%s: parse: %v", e.Name, err)
		}
		hasErr := len(res.Errors()) > 0
		if hasErr != wantErr[e.Rule] {
			t.Errorf("%s (%s): errors=%v, want %v", e.Name, e.Rule, hasErr, wantErr[e.Rule])
		}
	}
}

const cleanStaged = `__kernel void staged(__global const float* src, __global float* dst,
                     __local float* tile) {
    int i = get_global_id(0);
    int l = get_local_id(0);
    int p = get_local_size(0);
    int n = get_global_size(0);
    float s = 0.0f;
    tile[l] = src[i];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < p; k++) {
        s = s + tile[k];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    if (i < n) {
        dst[i] = s;
    }
}
`

// TestCleanKernel: a correctly barriered, guarded staging kernel analyzes
// without findings — the analyzers must not cry wolf on the canonical idiom.
func TestCleanKernel(t *testing.T) {
	res, err := Analyze(cleanStaged)
	if err != nil {
		t.Fatal(err)
	}
	// src/dst are read unguarded... src[i] at line 8 is unguarded. Expect
	// exactly the one boundsguard finding for src; everything else clean.
	for _, d := range res.Active() {
		if d.Rule == "boundsguard" && d.Kernel == "staged" {
			continue
		}
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestSuppressionTrailing(t *testing.T) {
	e := Corpus()[6] // unguarded_global_write
	src := strings.Replace(e.Src,
		"buf[i] = buf[i] * f;",
		"buf[i] = buf[i] * f; // kernelcheck:allow boundsguard -- launch is padded", 1)
	res, err := Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Active()); n != 0 {
		t.Fatalf("want 0 active findings, got %d: %v", n, res.Active())
	}
	sup := res.Suppressed()
	if len(sup) != 1 || sup[0].Rule != "boundsguard" || sup[0].SuppressReason != "launch is padded" {
		t.Fatalf("suppressed = %v", sup)
	}
}

func TestSuppressionBlockScope(t *testing.T) {
	e := Corpus()[2] // race_reduction_no_barrier
	src := strings.Replace(e.Src,
		"        if (l < s) {",
		"        // kernelcheck:allow localrace -- reduction tree, disjoint by l<s\n        if (l < s) {", 1)
	res, err := Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Active() {
		if d.Rule == "localrace" {
			t.Errorf("localrace not suppressed: %s", d)
		}
	}
	if len(res.Suppressed()) == 0 {
		t.Error("no suppressed findings recorded")
	}
}

func TestSuppressionHygiene(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing reason",
			"// kernelcheck:allow boundsguard\n" + Corpus()[6].Src,
			"without a justification"},
		{"unknown rule",
			"// kernelcheck:allow nosuchrule -- because\n" + Corpus()[6].Src,
			"unknown rule"},
		{"unused",
			"// kernelcheck:allow localrace -- nothing races here\n" + Corpus()[6].Src,
			"matches no finding"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Analyze(c.src)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range res.Active() {
				if d.Rule == "suppression" && strings.Contains(d.Message, c.want) {
					return
				}
			}
			t.Errorf("no suppression diagnostic containing %q in %v", c.want, res.Diags)
		})
	}
}

// TestAffineDisjoint pins the affine disjointness that keeps the shipped
// staging kernels clean: component writes tile[4*l+c] never collide across
// lanes or components.
func TestAffineDisjoint(t *testing.T) {
	src := `__kernel void k(__global const float* src, __local float* tile) {
    int l = get_local_id(0);
    tile[4*l] = src[l];
    tile[4*l+1] = src[l];
    tile[4*l+2] = src[l];
    tile[4*l+3] = src[l];
    barrier(CLK_LOCAL_MEM_FENCE);
}
`
	res, err := Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Active() {
		if d.Rule == "localrace" {
			t.Errorf("false positive: %s", d)
		}
	}
}
