// Package analysis is a vet-style static-analysis framework over the clc
// AST. Each Pass inspects one kernel (with its helper functions) and reports
// Diagnostics — rule name, severity, token position, message. The rule set
// targets the fragile GPU idioms the repository's kernel plans depend on:
// barriers under work-item-divergent control flow, __local tiles accessed
// across lanes without an intervening barrier, global indexing by unguarded
// global id, dead stores, and uncoalesced global access patterns.
//
// Findings can be silenced with a justified suppression comment in the
// kernel source:
//
//	// kernelcheck:allow rule1,rule2 -- why this is safe
//
// On its own line the pragma covers the next statement (and, when that
// statement opens a brace block, the whole block); at the end of a code line
// it covers that line. A suppression without a justification, or one that
// matches no finding, is itself reported, so stale annotations cannot
// accumulate.
//
// The severity policy: rules whose violation changes kernel *results*
// (barrierdiverge, localrace) are errors and fail cl.CreateProgram by
// default; idiom and performance rules (boundsguard, deadstore, unusedparam,
// uncoalesced) are warnings surfaced through kernelcheck, the build log and
// telemetry.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/clc"
)

// Severity classifies a diagnostic.
type Severity int

// Severities. Errors reject the program at build time (cl.CreateProgram);
// warnings surface through the build log, kernelcheck and telemetry.
const (
	SevWarning Severity = iota
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding of one rule.
type Diagnostic struct {
	// Rule is the reporting pass's name (e.g. "localrace").
	Rule string
	// Sev is the rule's severity.
	Sev Severity
	// Tok locates the finding in the source.
	Tok clc.Token
	// Kernel is the kernel function under analysis ("" for program-level
	// findings such as suppression hygiene).
	Kernel string
	// Message describes the finding.
	Message string
	// Suppressed marks a finding silenced by a kernelcheck:allow pragma.
	Suppressed bool
	// SuppressReason is the pragma's justification when Suppressed.
	SuppressReason string
}

// String renders the diagnostic in file:line:col style (without the file,
// which the caller knows).
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s: %s (%s)", d.Tok.Pos(), d.Rule, d.Message, d.Sev)
	if d.Suppressed {
		s += " [suppressed: " + d.SuppressReason + "]"
	}
	return s
}

// Context hands a pass everything it needs: the program, the kernel under
// analysis, and the shared uniformity/affine facts.
type Context struct {
	Prog *clc.Program
	Fn   *clc.Function
	Info *Info
}

// Pass is one analyzer rule.
type Pass struct {
	// Name is the rule name used in diagnostics and suppressions.
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Sev is the severity of every diagnostic the pass reports.
	Sev Severity
	// Run analyzes one kernel.
	Run func(*Context) []Diagnostic
}

// Passes returns the registered rule set in a stable order.
func Passes() []*Pass {
	out := []*Pass{
		{Name: "barrierdiverge", Sev: SevError,
			Doc: "barrier() reachable under work-item-divergent control flow",
			Run: runBarrierDiverge},
		{Name: "localrace", Sev: SevError,
			Doc: "__local buffer accessed by different work-items without an intervening barrier",
			Run: runLocalRace},
		{Name: "boundsguard", Sev: SevWarning,
			Doc: "__global buffer indexed by global id without a dominating bound guard",
			Run: runBoundsGuard},
		{Name: "deadstore", Sev: SevWarning,
			Doc: "stored value is never read",
			Run: runDeadStore},
		{Name: "unusedparam", Sev: SevWarning,
			Doc: "function parameter is never used",
			Run: runUnusedParam},
		{Name: "uncoalesced", Sev: SevWarning,
			Doc: "strided or work-item-independent global access in an innermost loop",
			Run: runUncoalesced},
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PassNames lists the registered rule names.
func PassNames() []string {
	var names []string
	for _, p := range Passes() {
		names = append(names, p.Name)
	}
	return names
}

// Result is the outcome of analyzing one program.
type Result struct {
	// Diags holds every finding (suppressed ones included), ordered by
	// source position.
	Diags []Diagnostic
}

// Active returns the unsuppressed findings.
func (r *Result) Active() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Errors returns the unsuppressed error-severity findings — the set that
// fails a strict build.
func (r *Result) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if !d.Suppressed && d.Sev == SevError {
			out = append(out, d)
		}
	}
	return out
}

// Suppressed returns the findings silenced by pragmas.
func (r *Result) Suppressed() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Analyze parses src and runs every registered pass over every kernel,
// applying the source's suppression pragmas. A parse error is returned as
// err; analysis findings never are.
func Analyze(src string) (*Result, error) {
	prog, err := clc.Parse(src)
	if err != nil {
		return nil, err
	}
	return AnalyzeProgram(prog, src), nil
}

// AnalyzeProgram runs every pass over an already-parsed program. src is the
// original source text, used to honour suppression pragmas (pass "" to
// disable suppression handling).
func AnalyzeProgram(prog *clc.Program, src string) *Result {
	var diags []Diagnostic
	for _, fn := range prog.Kernels() {
		info := computeInfo(prog, fn)
		ctx := &Context{Prog: prog, Fn: fn, Info: info}
		for _, p := range Passes() {
			for _, d := range p.Run(ctx) {
				d.Rule = p.Name
				d.Sev = p.Sev
				d.Kernel = fn.Name
				diags = append(diags, d)
			}
		}
	}
	// unusedparam also covers helper functions (a kernel-independent check).
	for _, name := range prog.Order {
		fn := prog.Functions[name]
		if fn.IsKernel {
			continue
		}
		for _, d := range unusedParams(fn) {
			d.Rule = "unusedparam"
			d.Sev = SevWarning
			d.Kernel = fn.Name
			diags = append(diags, d)
		}
	}
	sups, supDiags := parseSuppressions(src)
	diags = append(diags, supDiags...)
	for i := range diags {
		if diags[i].Rule == "suppression" {
			continue
		}
		for _, s := range sups {
			if s.covers(diags[i].Rule, diags[i].Tok.Line) {
				diags[i].Suppressed = true
				diags[i].SuppressReason = s.reason
				s.used = true
				break
			}
		}
	}
	for _, s := range sups {
		if !s.used && s.reason != "" {
			diags = append(diags, Diagnostic{
				Rule: "suppression", Sev: SevWarning,
				Tok:     clc.Token{Line: s.line, Col: 1},
				Message: fmt.Sprintf("suppression for %s matches no finding", strings.Join(s.rules, ",")),
			})
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Tok.Line != diags[j].Tok.Line {
			return diags[i].Tok.Line < diags[j].Tok.Line
		}
		if diags[i].Tok.Col != diags[j].Tok.Col {
			return diags[i].Tok.Col < diags[j].Tok.Col
		}
		return diags[i].Rule < diags[j].Rule
	})
	return &Result{Diags: diags}
}

// suppression is one parsed kernelcheck:allow pragma.
type suppression struct {
	rules    []string
	reason   string
	line     int // pragma line
	from, to int // covered line range, inclusive
	used     bool
}

func (s *suppression) covers(rule string, line int) bool {
	if line < s.from || line > s.to {
		return false
	}
	for _, r := range s.rules {
		if r == rule {
			return true
		}
	}
	return false
}

const allowMarker = "kernelcheck:allow"

// parseSuppressions scans the raw source for kernelcheck:allow pragmas.
// Comments are invisible to the lexer, so this is a line-oriented scan: a
// pragma at the end of a code line covers that line; a pragma on its own
// line covers the next code line and, when that line opens a brace block,
// the whole block (matched textually — the clc subset has no string or
// character literals, so brace counting is exact).
func parseSuppressions(src string) ([]*suppression, []Diagnostic) {
	if src == "" {
		return nil, nil
	}
	lines := strings.Split(src, "\n")
	var sups []*suppression
	var diags []Diagnostic
	for i, line := range lines {
		idx := strings.Index(line, "//")
		if idx < 0 {
			continue
		}
		comment := line[idx+2:]
		m := strings.Index(comment, allowMarker)
		if m < 0 {
			continue
		}
		lineNo := i + 1
		body := strings.TrimSpace(comment[m+len(allowMarker):])
		spec, reason := body, ""
		if cut := strings.Index(body, "--"); cut >= 0 {
			spec = strings.TrimSpace(body[:cut])
			reason = strings.TrimSpace(body[cut+2:])
		}
		var rules []string
		for _, r := range strings.Split(spec, ",") {
			if r = strings.TrimSpace(r); r != "" {
				rules = append(rules, r)
			}
		}
		s := &suppression{rules: rules, reason: reason, line: lineNo}
		if reason == "" {
			diags = append(diags, Diagnostic{
				Rule: "suppression", Sev: SevWarning,
				Tok:     clc.Token{Line: lineNo, Col: idx + 1},
				Message: "suppression without a justification (use: kernelcheck:allow rule -- reason)",
			})
		}
		if known := PassNames(); true {
			for _, r := range rules {
				found := false
				for _, k := range known {
					if r == k {
						found = true
					}
				}
				if !found {
					diags = append(diags, Diagnostic{
						Rule: "suppression", Sev: SevWarning,
						Tok:     clc.Token{Line: lineNo, Col: idx + 1},
						Message: fmt.Sprintf("suppression names unknown rule %q", r),
					})
				}
			}
		}
		if strings.TrimSpace(line[:idx]) != "" {
			// Trailing pragma: covers its own line.
			s.from, s.to = lineNo, lineNo
		} else {
			// Standalone pragma: covers the next code line, extended to the
			// end of the brace block that line opens (if any).
			s.from, s.to = suppressionExtent(lines, i)
		}
		sups = append(sups, s)
	}
	return sups, diags
}

// suppressionExtent returns the covered [from,to] line range (1-based) of a
// standalone pragma at index i.
func suppressionExtent(lines []string, i int) (int, int) {
	j := i + 1
	for j < len(lines) {
		code := stripLineComment(lines[j])
		if strings.TrimSpace(code) != "" {
			break
		}
		j++
	}
	if j >= len(lines) {
		return i + 2, i + 2
	}
	from := j + 1
	depth := braceDelta(stripLineComment(lines[j]))
	if depth <= 0 {
		return from, from
	}
	for k := j + 1; k < len(lines); k++ {
		depth += braceDelta(stripLineComment(lines[k]))
		if depth <= 0 {
			return from, k + 1
		}
	}
	return from, len(lines)
}

func stripLineComment(line string) string {
	if idx := strings.Index(line, "//"); idx >= 0 {
		return line[:idx]
	}
	return line
}

func braceDelta(code string) int {
	d := 0
	for i := 0; i < len(code); i++ {
		switch code[i] {
		case '{':
			d++
		case '}':
			d--
		}
	}
	return d
}
