package analysis

import (
	"fmt"

	"repro/internal/clc"
)

// runBarrierDiverge flags barrier() calls that are reachable under
// work-item-divergent control flow: inside an if/loop whose condition
// depends on get_global_id/get_local_id, or after a divergent early return.
// On hardware such a barrier is undefined behaviour (lanes wait for peers
// that never arrive); on the simulated device it silently desynchronises the
// group's barrier phases.
func runBarrierDiverge(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	divergedExit := false // a lane may already have returned divergently

	barrierAt := func(tok clc.Token, depth int) {
		switch {
		case depth > 0:
			diags = append(diags, Diagnostic{Tok: tok,
				Message: "barrier under work-item-divergent control flow: not all work-items reach it"})
		case divergedExit:
			diags = append(diags, Diagnostic{Tok: tok,
				Message: "barrier after a work-item-divergent return: retired work-items never reach it"})
		}
	}

	var walkBlock func(b *clc.Block, depth int)
	var walk func(s clc.Stmt, depth int)
	scanExpr := func(e clc.Expr, depth int) {
		walkExpr(e, func(e clc.Expr) {
			if c, ok := e.(*clc.Call); ok {
				if c.Name == "barrier" || ctx.Info.FnHasBarrier(c.Name) {
					barrierAt(c.Tok, depth)
				}
			}
		})
	}
	walk = func(s clc.Stmt, depth int) {
		switch x := s.(type) {
		case nil:
		case *clc.Block:
			walkBlock(x, depth)
		case *clc.DeclStmt:
			scanExpr(x.Init, depth)
		case *clc.ExprStmt:
			scanExpr(x.X, depth)
		case *clc.ReturnStmt:
			if depth > 0 {
				divergedExit = true
			}
		case *clc.IfStmt:
			scanExpr(x.Cond, depth)
			d := depth
			if ctx.Info.ExprDivergent(x.Cond) {
				d++
			}
			walkBlock(x.Then, d)
			walk(x.Else, d)
		case *clc.ForStmt:
			walk(x.Init, depth)
			scanExpr(x.Cond, depth)
			d := depth
			if x.Cond != nil && ctx.Info.ExprDivergent(x.Cond) {
				d++
			}
			walkBlock(x.Body, d)
			walk(x.Post, d)
		case *clc.WhileStmt:
			scanExpr(x.Cond, depth)
			d := depth
			if ctx.Info.ExprDivergent(x.Cond) {
				d++
			}
			walkBlock(x.Body, d)
		}
	}
	walkBlock = func(b *clc.Block, depth int) {
		for _, s := range b.Stmts {
			walk(s, depth)
		}
	}
	walkBlock(ctx.Fn.Body, 0)
	return diags
}

// runBoundsGuard flags indexing of a __global buffer by a
// get_global_id-derived expression that is not dominated by a bound guard
// (if (i < n) ..., or an early return on i >= n). Padded launches make this
// safe by construction, which is why it is a warning — such kernels carry a
// suppression stating the invariant.
func runBoundsGuard(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	flagged := map[string]bool{} // one finding per buffer per kernel
	guardedAfter := false        // a dominating early-return guard has run

	// isUpperGuard reports whether cond bounds a gid-derived value from
	// above (i < n, i <= n, n > i, ...), possibly conjoined with &&.
	var isUpperGuard func(e clc.Expr) bool
	isUpperGuard = func(e clc.Expr) bool {
		b, ok := e.(*clc.Binary)
		if !ok {
			return false
		}
		switch b.Op {
		case clc.ANDAND, clc.OROR:
			return isUpperGuard(b.X) || isUpperGuard(b.Y)
		case clc.LT, clc.LE:
			return ctx.Info.exprGID(b.X) && !ctx.Info.ExprDivergent(b.Y)
		case clc.GT, clc.GE:
			return ctx.Info.exprGID(b.Y) && !ctx.Info.ExprDivergent(b.X)
		}
		return false
	}
	// isLowerExitGuard recognises if (i >= n) { return; } style guards.
	isExitGuard := func(s *clc.IfStmt) bool {
		b, ok := s.Cond.(*clc.Binary)
		if !ok {
			return false
		}
		bounds := false
		switch b.Op {
		case clc.GE, clc.GT:
			bounds = ctx.Info.exprGID(b.X) && !ctx.Info.ExprDivergent(b.Y)
		case clc.LT, clc.LE:
			bounds = ctx.Info.exprGID(b.Y) && !ctx.Info.ExprDivergent(b.X)
		}
		if !bounds || s.Then == nil {
			return false
		}
		for _, st := range s.Then.Stmts {
			if _, ok := st.(*clc.ReturnStmt); ok {
				return true
			}
		}
		return false
	}

	scanExpr := func(e clc.Expr, guarded bool) {
		walkExpr(e, func(e clc.Expr) {
			idx, ok := e.(*clc.Index)
			if !ok {
				return
			}
			buf, ok := ctx.Info.IsGlobalBuf(idx.X)
			if !ok || flagged[buf] {
				return
			}
			if !ctx.Info.exprGID(idx.I) {
				return
			}
			if guarded || guardedAfter {
				return
			}
			flagged[buf] = true
			diags = append(diags, Diagnostic{Tok: idx.Tok,
				Message: fmt.Sprintf("__global %q indexed by get_global_id-derived %q without a dominating bound guard",
					buf, clc.ExprString(idx.I))})
		})
	}

	var walkBlock func(b *clc.Block, guarded bool)
	var walk func(s clc.Stmt, guarded bool)
	walk = func(s clc.Stmt, guarded bool) {
		switch x := s.(type) {
		case nil:
		case *clc.Block:
			walkBlock(x, guarded)
		case *clc.DeclStmt:
			scanExpr(x.Init, guarded)
		case *clc.ExprStmt:
			scanExpr(x.X, guarded)
		case *clc.ReturnStmt:
			scanExpr(x.Value, guarded)
		case *clc.IfStmt:
			scanExpr(x.Cond, guarded)
			g := guarded || isUpperGuard(x.Cond)
			walkBlock(x.Then, g)
			walk(x.Else, guarded)
			if isExitGuard(x) {
				guardedAfter = true
			}
		case *clc.ForStmt:
			walk(x.Init, guarded)
			scanExpr(x.Cond, guarded)
			g := guarded || (x.Cond != nil && isUpperGuard(x.Cond))
			walkBlock(x.Body, g)
			walk(x.Post, g)
		case *clc.WhileStmt:
			scanExpr(x.Cond, guarded)
			walkBlock(x.Body, guarded || isUpperGuard(x.Cond))
		}
	}
	walkBlock = func(b *clc.Block, guarded bool) {
		for _, s := range b.Stmts {
			walk(s, guarded)
		}
	}
	walkBlock(ctx.Fn.Body, false)
	return diags
}

// runDeadStore flags stores (declarations with initialisers and
// assignments) to scalar variables whose value is never read anywhere in
// the kernel. Compound assignment and ++/-- count as reads.
func runDeadStore(ctx *Context) []Diagnostic {
	reads := map[string]bool{}
	var countReads func(e clc.Expr, writeRoot bool)
	countReads = func(e clc.Expr, writeRoot bool) {
		switch x := e.(type) {
		case nil:
		case *clc.Ident:
			if !writeRoot {
				reads[x.Name] = true
			}
		case *clc.Unary:
			countReads(x.X, false)
		case *clc.Binary:
			countReads(x.X, false)
			countReads(x.Y, false)
		case *clc.Cond:
			countReads(x.C, false)
			countReads(x.A, false)
			countReads(x.B, false)
		case *clc.Index:
			countReads(x.X, false) // indexing reads the pointer variable
			countReads(x.I, false)
		case *clc.Member:
			// Writing x.y reads the other components, conservatively a read.
			countReads(x.X, false)
		case *clc.Call:
			for _, a := range x.Args {
				countReads(a, false)
			}
		case *clc.Assign:
			// Plain = to an Ident does not read it; op= does. Index/member
			// targets always read their base.
			if id, ok := x.LHS.(*clc.Ident); ok {
				if x.Op != clc.ASSIGN {
					reads[id.Name] = true
				}
			} else {
				countReads(x.LHS, false)
			}
			countReads(x.RHS, false)
		case *clc.IncDec:
			countReads(x.X, false)
		}
	}
	walkStmts(ctx.Fn.Body, func(s clc.Stmt) {
		walkStmtExprs(s, func(e clc.Expr) {
			if _, ok := e.(*clc.Assign); ok {
				countReads(e, false)
			}
		})
		switch x := s.(type) {
		case *clc.DeclStmt:
			countReads(x.Init, false)
		case *clc.ExprStmt:
			if _, isAssign := x.X.(*clc.Assign); !isAssign {
				countReads(x.X, false)
			}
		case *clc.IfStmt:
			countReads(x.Cond, false)
		case *clc.ForStmt:
			countReads(x.Cond, false)
		case *clc.WhileStmt:
			countReads(x.Cond, false)
		case *clc.ReturnStmt:
			countReads(x.Value, false)
		}
	})

	var diags []Diagnostic
	seen := map[string]bool{}
	report := func(name string, tok clc.Token, what string) {
		if reads[name] || seen[name] {
			return
		}
		seen[name] = true
		diags = append(diags, Diagnostic{Tok: tok,
			Message: fmt.Sprintf("%s to %q is never read", what, name)})
	}
	walkStmts(ctx.Fn.Body, func(s clc.Stmt) {
		if d, ok := s.(*clc.DeclStmt); ok && d.ArraySize == 0 && d.Init != nil {
			report(d.Name, d.Tok, "stored value")
		}
		walkStmtExprs(s, func(e clc.Expr) {
			if a, ok := e.(*clc.Assign); ok {
				if id, ok := a.LHS.(*clc.Ident); ok {
					report(id.Name, a.Tok, "stored value")
				}
			}
		})
	})
	return diags
}

// runUnusedParam flags kernel parameters that are never referenced.
func runUnusedParam(ctx *Context) []Diagnostic {
	return unusedParams(ctx.Fn)
}

// unusedParams is shared between the kernel pass and the helper-function
// sweep in AnalyzeProgram.
func unusedParams(fn *clc.Function) []Diagnostic {
	used := map[string]bool{}
	walkStmts(fn.Body, func(s clc.Stmt) {
		walkStmtExprs(s, func(e clc.Expr) {
			walkExpr(e, func(e clc.Expr) {
				if id, ok := e.(*clc.Ident); ok {
					used[id.Name] = true
				}
			})
		})
	})
	var diags []Diagnostic
	for _, prm := range fn.Params {
		if !used[prm.Name] {
			diags = append(diags, Diagnostic{Tok: prm.Tok,
				Message: fmt.Sprintf("parameter %q is never used", prm.Name)})
		}
	}
	return diags
}

// runUncoalesced is the performance lint: inside innermost loops (where the
// access repeats per iteration and dominates traffic), a __global access
// whose index is work-item-independent is a broadcast the whole group
// serialises on, and one whose per-lane stride exceeds the float4 vector
// width defeats coalescing. Data-dependent gathers are charged by the cost
// model instead and are not flagged. One finding per buffer per loop.
func runUncoalesced(ctx *Context) []Diagnostic {
	const maxCoalescedStride = 4
	var diags []Diagnostic

	// Collect innermost loop bodies (loops containing no nested loop).
	var loops []*clc.Block
	walkStmts(ctx.Fn.Body, func(s clc.Stmt) {
		var body *clc.Block
		switch x := s.(type) {
		case *clc.ForStmt:
			body = x.Body
		case *clc.WhileStmt:
			body = x.Body
		default:
			return
		}
		nested := false
		walkStmts(body, func(inner clc.Stmt) {
			switch inner.(type) {
			case *clc.ForStmt, *clc.WhileStmt:
				nested = true
			}
		})
		if !nested {
			loops = append(loops, body)
		}
	})

	for _, body := range loops {
		flagged := map[string]bool{}
		walkStmts(body, func(s clc.Stmt) {
			walkStmtExprs(s, func(e clc.Expr) {
				walkExpr(e, func(e clc.Expr) {
					idx, ok := e.(*clc.Index)
					if !ok {
						return
					}
					buf, ok := ctx.Info.IsGlobalBuf(idx.X)
					if !ok || flagged[buf] {
						return
					}
					aff := ctx.Info.exprAffine(idx.I)
					elem := int32(1)
					if id, ok := idx.X.(*clc.Ident); ok {
						for _, prm := range ctx.Fn.Params {
							if prm.Name == id.Name && prm.Type.Vec4 {
								elem = 4 // float4 elements span 4 floats per index step
							}
						}
					}
					switch {
					case aff.kind == affWildDivergent:
						// Data-dependent gather: modelled, not linted.
					case !aff.laneDependent():
						flagged[buf] = true
						diags = append(diags, Diagnostic{Tok: idx.Tok,
							Message: fmt.Sprintf("work-item-independent (broadcast) access to __global %q inside a loop", buf)})
					case abs32(aff.coeff)*elem > maxCoalescedStride:
						flagged[buf] = true
						diags = append(diags, Diagnostic{Tok: idx.Tok,
							Message: fmt.Sprintf("strided access to __global %q (per-lane stride %d floats) defeats coalescing",
								buf, abs32(aff.coeff)*elem)})
					}
				})
			})
		})
	}
	return diags
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
