package analysis

import (
	"strings"
	"testing"
)

// These tests pin the suppression-audit edge cases to the same behavior
// internal/lint enforces for repocheck:allow pragmas (see
// internal/lint/lint_test.go): a mis-anchored pragma silences nothing and
// is itself reported, a pragma over a clean region is reported, and
// stacked duplicate pragmas resolve to the first in source order with the
// leftover reported. Keeping the two audits symmetric is what lets
// repocheck -json and kernelcheck -json share one findings pipeline.

func countAnalysisRule(diags []Diagnostic, rule string) int {
	n := 0
	for _, d := range diags {
		if d.Rule == rule {
			n++
		}
	}
	return n
}

func findAnalysisAt(diags []Diagnostic, rule string, line int) *Diagnostic {
	for i := range diags {
		if diags[i].Rule == rule && diags[i].Tok.Line == line {
			return &diags[i]
		}
	}
	return nil
}

// TestSuppressionWrongLine mirrors lint's TestSuppressionWrongLine: a
// trailing pragma covers only its own line, so anchoring it below the
// defect leaves the finding active and reports the pragma as unused.
func TestSuppressionWrongLine(t *testing.T) {
	const src = `__kernel void k(__global float* a, int unused) {
    int i = get_global_id(0); // kernelcheck:allow unusedparam -- anchored here, but the parameter is above
    if (i < 4) {
        a[i] = 1.0f;
    }
}
`
	res, err := Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	active := res.Active()
	if d := findAnalysisAt(active, "unusedparam", 1); d == nil {
		t.Errorf("unusedparam finding at line 1 not active; got %v", active)
	}
	if d := findAnalysisAt(active, "suppression", 2); d == nil || !strings.Contains(d.Message, "matches no finding") {
		t.Errorf("no unused-pragma finding at line 2; got %v", active)
	}
	if n := len(res.Suppressed()); n != 0 {
		t.Errorf("suppressed %d findings; the wrong-line pragma must cover nothing", n)
	}
}

// TestSuppressionZeroBlock mirrors lint's TestSuppressionZeroBlock: a
// standalone pragma over a clean kernel matches nothing and is the sole
// finding.
func TestSuppressionZeroBlock(t *testing.T) {
	const src = `// kernelcheck:allow unusedparam -- this kernel is actually clean
__kernel void k(__global float* a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        a[i] = 1.0f;
    }
}
`
	res, err := Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	active := res.Active()
	if len(active) != 1 {
		t.Fatalf("want exactly 1 active finding, got %d: %v", len(active), active)
	}
	if active[0].Rule != "suppression" || active[0].Tok.Line != 1 ||
		!strings.Contains(active[0].Message, "matches no finding") {
		t.Errorf("want unused-pragma finding at line 1, got %s", active[0])
	}
}

// TestSuppressionDuplicate mirrors lint's TestSuppressionDuplicate: with a
// block pragma and a trailing pragma stacked on one finding, the first in
// source order claims it and the duplicate is reported as unused.
func TestSuppressionDuplicate(t *testing.T) {
	const src = `// kernelcheck:allow unusedparam -- block-level justification wins
__kernel void k(__global float* a, int n, int unused) { // kernelcheck:allow unusedparam -- duplicate trailing justification
    int i = get_global_id(0);
    if (i < n) {
        a[i] = 1.0f;
    }
}
`
	res, err := Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	sup := res.Suppressed()
	if len(sup) != 1 || sup[0].Rule != "unusedparam" {
		t.Fatalf("want exactly 1 suppressed unusedparam finding, got %v", sup)
	}
	if want := "block-level justification wins"; sup[0].SuppressReason != want {
		t.Errorf("suppressed by %q, want the first pragma in source order (%q)", sup[0].SuppressReason, want)
	}
	active := res.Active()
	if len(active) != 1 || active[0].Rule != "suppression" || active[0].Tok.Line != 2 {
		t.Fatalf("want exactly the duplicate-pragma finding at line 2, got %v", active)
	}
	if countAnalysisRule(res.Diags, "suppression") != 1 {
		t.Errorf("duplicate pragma produced extra suppression findings: %v", res.Diags)
	}
}
