package analysis

// The known-bad corpus: small kernels, each written to violate exactly one
// rule, with the expected rule name and token position. Entries marked
// Dynamic also carry a launch specification so the agreement test (and
// `kernelcheck -corpus`) can run them under the checked interpreter and
// confirm that the static finding and the runtime trap identify the same
// defect. The corpus doubles as the CI gate: kernelcheck must fail on every
// entry.

// CorpusArg describes one launch argument of a corpus kernel.
type CorpusArg struct {
	// Kind is "fbuf" (float32 buffer), "ibuf" (int32 buffer), "int",
	// "float" or "local" (float32 slots of group-local memory).
	Kind  string
	N     int // elements for fbuf/ibuf/local
	Int   int32
	Float float32
}

// CorpusEntry is one known-bad kernel.
type CorpusEntry struct {
	// Name identifies the entry in tests and CLI output.
	Name string
	// Kernel is the __kernel function to analyze and launch.
	Kernel string
	// Rule is the rule expected to fire, at WantLine:WantCol.
	Rule     string
	WantLine int
	WantCol  int
	// Src is the kernel source.
	Src string
	// Dynamic marks entries whose defect also traps under the checked
	// interpreter (launched with Global/Local/Args); TrapSubstring must
	// appear in the launch error.
	Dynamic       bool
	Global, Local int
	Args          []CorpusArg
	TrapSubstring string
}

// Corpus returns the known-bad kernel set.
func Corpus() []CorpusEntry {
	return []CorpusEntry{
		{
			Name:   "race_missing_first_barrier",
			Kernel: "stage",
			Rule:   "localrace", WantLine: 7, WantCol: 9,
			Src: `__kernel void stage(__global const float* src, __global float* dst,
                    __local float* tile) {
    int i = get_global_id(0);
    int l = get_local_id(0);
    int p = get_local_size(0);
    float s = 0.0f;
    tile[l] = src[i];
    for (int k = 0; k < p; k++) {
        s = s + tile[k];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    dst[i] = s;
}
`,
			Dynamic: true, Global: 8, Local: 4,
			Args: []CorpusArg{
				{Kind: "fbuf", N: 8}, {Kind: "fbuf", N: 8}, {Kind: "local", N: 4},
			},
			TrapSubstring: "checked: localrace",
		},
		{
			Name:   "race_missing_wrap_barrier",
			Kernel: "wrap",
			Rule:   "localrace", WantLine: 8, WantCol: 13,
			Src: `__kernel void wrap(__global const float* src, __global float* dst,
                   __local float* tile) {
    int i = get_global_id(0);
    int l = get_local_id(0);
    int p = get_local_size(0);
    float s = 0.0f;
    for (int t = 0; t < 2; t++) {
        tile[l] = src[i + 8 * t];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < p; k++) {
            s = s + tile[k];
        }
    }
    dst[i] = s;
}
`,
			Dynamic: true, Global: 8, Local: 4,
			Args: []CorpusArg{
				{Kind: "fbuf", N: 16}, {Kind: "fbuf", N: 8}, {Kind: "local", N: 4},
			},
			TrapSubstring: "checked: localrace",
		},
		{
			Name:   "race_reduction_no_barrier",
			Kernel: "reduce",
			Rule:   "localrace", WantLine: 8, WantCol: 17,
			Src: `__kernel void reduce(__global float* dst, __local float* part) {
    int l = get_local_id(0);
    int p = get_local_size(0);
    part[l] = (float)l;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = p / 2; s > 0; s = s / 2) {
        if (l < s) {
            part[l] += part[l + s];
        }
    }
    if (l == 0) {
        dst[0] = part[0];
    }
}
`,
			Dynamic: true, Global: 4, Local: 4,
			Args: []CorpusArg{
				{Kind: "fbuf", N: 4}, {Kind: "local", N: 4},
			},
			TrapSubstring: "checked: localrace",
		},
		{
			Name:   "barrier_in_divergent_if",
			Kernel: "divif",
			Rule:   "barrierdiverge", WantLine: 4, WantCol: 9,
			Src: `__kernel void divif(__global float* dst) {
    int l = get_local_id(0);
    if (l < 2) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    dst[l] = 1.0f;
}
`,
			Dynamic: true, Global: 4, Local: 4,
			Args:          []CorpusArg{{Kind: "fbuf", N: 4}},
			TrapSubstring: "checked: barrierdiverge",
		},
		{
			Name:   "barrier_after_divergent_return",
			Kernel: "divret",
			Rule:   "barrierdiverge", WantLine: 6, WantCol: 5,
			Src: `__kernel void divret(__global float* dst) {
    int l = get_local_id(0);
    if (l == 0) {
        return;
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    dst[l] = 1.0f;
}
`,
			Dynamic: true, Global: 4, Local: 4,
			Args:          []CorpusArg{{Kind: "fbuf", N: 4}},
			TrapSubstring: "checked: barrierdiverge",
		},
		{
			Name:   "barrier_in_divergent_loop",
			Kernel: "divloop",
			Rule:   "barrierdiverge", WantLine: 4, WantCol: 9,
			Src: `__kernel void divloop(__global float* dst) {
    int l = get_local_id(0);
    for (int k = 0; k < l; k++) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    dst[l] = 1.0f;
}
`,
			Dynamic: true, Global: 4, Local: 4,
			Args:          []CorpusArg{{Kind: "fbuf", N: 4}},
			TrapSubstring: "checked: barrierdiverge",
		},
		{
			Name:   "unguarded_global_write",
			Kernel: "scale",
			Rule:   "boundsguard", WantLine: 3, WantCol: 8,
			Src: `__kernel void scale(__global float* buf, float f) {
    int i = get_global_id(0);
    buf[i] = buf[i] * f;
}
`,
			// The defect is dynamic too: launched over more work-items than
			// buffer elements, the unguarded index runs off the end (the
			// bounds check is always on, checked mode or not).
			Dynamic: true, Global: 8, Local: 4,
			Args:          []CorpusArg{{Kind: "fbuf", N: 6}, {Kind: "float", Float: 2}},
			TrapSubstring: "out of range",
		},
		{
			Name:   "dead_store",
			Kernel: "deadk",
			Rule:   "deadstore", WantLine: 4, WantCol: 5,
			Src: `__kernel void deadk(__global float* dst) {
    int i = get_global_id(0);
    int n = get_global_size(0);
    float w = 2.0f;
    if (i < n) {
        dst[i] = 1.0f;
    }
}
`,
		},
		{
			Name:   "unused_param",
			Kernel: "unusedp",
			Rule:   "unusedparam", WantLine: 1, WantCol: 50,
			Src: `__kernel void unusedp(__global float* dst, float alpha) {
    int i = get_global_id(0);
    int n = get_global_size(0);
    if (i < n) {
        dst[i] = 1.0f;
    }
}
`,
		},
		{
			Name:   "strided_global_loop",
			Kernel: "strided",
			Rule:   "uncoalesced", WantLine: 7, WantCol: 24,
			Src: `__kernel void strided(__global const float* src, __global float* dst) {
    int i = get_global_id(0);
    int n = get_global_size(0);
    float s = 0.0f;
    if (i < n) {
        for (int k = 0; k < 8; k++) {
            s = s + src[8 * i + k];
        }
        dst[i] = s;
    }
}
`,
		},
	}
}
