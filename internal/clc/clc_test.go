package clc

import (
	"strings"
	"testing"

	"repro/internal/gpusim"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`__kernel void f(__global float* x) { x[0] = 1.5f + 2e-1; } // c
/* block
comment */ #pragma OPENCL`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KWKERNEL, KWVOID, IDENT, LPAREN, KWGLOBAL, KWFLOAT, STAR, IDENT,
		RPAREN, LBRACE, IDENT, LBRACKET, INTLIT, RBRACKET, ASSIGN, FLOATLIT, PLUS,
		FLOATLIT, SEMI, RBRACE, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v %q, want %v", i, toks[i].Kind, toks[i].Text, k)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`+= -= *= /= ++ -- == != <= >= && || ! ? :`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{PLUSEQ, MINUSEQ, STAREQ, SLASHEQ, PLUSPLUS, MINUSMINU,
		EQ, NE, LE, GE, ANDAND, OROR, NOT, QUESTION, COLON, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"$", "1.5e", "/* unterminated"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) accepted", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                          // no kernel
		"void f() {}",                               // no kernel entry
		"__kernel int f() {}",                       // kernel must return void
		"__kernel void f(int x, int x) {}",          // duplicate param
		"__kernel void f() { int; }",                // missing declarator
		"__kernel void f() { 1 = 2; }",              // unassignable
		"__kernel void f() { if (1 {} }",            // bad paren
		"__kernel void f() { return",                // unterminated
		"__kernel void f() {} __kernel void f() {}", // redefinition
		"__kernel void f(__global int x) {}",        // space qualifier on scalar
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

// runKernel compiles src, binds args, and launches over global/local on the
// test device.
func runKernel(t *testing.T, src, name string, global, local int, args ...Arg) *gpusim.Result {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fn, lds, err := Bind(prog, name, args)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	res, err := dev.Launch(name, fn, gpusim.LaunchParams{Global: global, Local: local, LDSFloats: lds})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return res
}

func TestVectorAdd(t *testing.T) {
	const src = `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	a := dev.NewBufferF32("a", 64)
	b := dev.NewBufferF32("b", 64)
	c := dev.NewBufferF32("c", 64)
	for i := 0; i < 64; i++ {
		a.HostF32()[i] = float32(i)
		b.HostF32()[i] = float32(2 * i)
	}
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, lds, err := Bind(prog, "vadd", []Arg{BufArg(a), BufArg(b), BufArg(c), IntArg(60)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch("vadd", fn, gpusim.LaunchParams{Global: 64, Local: 8, LDSFloats: lds}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if c.HostF32()[i] != float32(3*i) {
			t.Fatalf("c[%d] = %g, want %g", i, c.HostF32()[i], float32(3*i))
		}
	}
	for i := 60; i < 64; i++ {
		if c.HostF32()[i] != 0 {
			t.Fatalf("guard failed: c[%d] = %g", i, c.HostF32()[i])
		}
	}
}

func TestControlFlowAndHelpers(t *testing.T) {
	const src = `
float square(float x) { return x * x; }

int collatz_steps(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps++;
    }
    return steps;
}

__kernel void k(__global float* out, __global int* iout) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int j = 0; j <= i; j++) {
        acc += square((float)j);
    }
    out[i] = acc;
    iout[i] = collatz_steps(i + 1);
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	out := dev.NewBufferF32("out", 8)
	iout := dev.NewBufferI32("iout", 8)
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _, err := Bind(prog, "k", []Arg{BufArg(out), BufArg(iout)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch("k", fn, gpusim.LaunchParams{Global: 8, Local: 8}); err != nil {
		t.Fatal(err)
	}
	// Sum of squares 0..i.
	for i := 0; i < 8; i++ {
		want := float32(0)
		for j := 0; j <= i; j++ {
			want += float32(j * j)
		}
		if out.HostF32()[i] != want {
			t.Errorf("out[%d] = %g, want %g", i, out.HostF32()[i], want)
		}
	}
	// Collatz steps for 1..8: 0,1,7,2,5,8,16,3.
	want := []int32{0, 1, 7, 2, 5, 8, 16, 3}
	for i, w := range want {
		if iout.HostI32()[i] != w {
			t.Errorf("iout[%d] = %d, want %d", i, iout.HostI32()[i], w)
		}
	}
}

func TestBarrierAndLocalMemory(t *testing.T) {
	// Rotate values through local memory across a barrier.
	const src = `
__kernel void rot(__global float* out, __local float* tile) {
    int l = get_local_id(0);
    int p = get_local_size(0);
    tile[l] = (float)(l * 10);
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tile[(l + 1) % p];
}`
	res := runKernel(t, src, "rot", 16, 8,
		BufArg(gpusim.MustNewDevice(gpusim.TestDevice()).NewBufferF32("tmp", 16)), LocalArg(8))
	_ = res
	// Re-run against a buffer we keep.
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	out := dev.NewBufferF32("out", 16)
	prog, _ := Parse(src)
	fn, lds, err := Bind(prog, "rot", []Arg{BufArg(out), LocalArg(8)})
	if err != nil {
		t.Fatal(err)
	}
	r, err := dev.Launch("rot", fn, gpusim.LaunchParams{Global: 16, Local: 8, LDSFloats: lds})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		for l := 0; l < 8; l++ {
			want := float32(((l + 1) % 8) * 10)
			if got := out.HostF32()[g*8+l]; got != want {
				t.Errorf("out[%d] = %g, want %g", g*8+l, got, want)
			}
		}
	}
	if r.Groups[0].Barriers != 1 {
		t.Errorf("barriers = %d, want 1", r.Groups[0].Barriers)
	}
	if r.Groups[0].LDSBytes == 0 {
		t.Error("no LDS traffic counted")
	}
}

func TestBuiltins(t *testing.T) {
	const src = `
__kernel void b(__global float* out) {
    out[0] = sqrt(16.0f);
    out[1] = rsqrt(4.0f);
    out[2] = fabs(-3.5f);
    out[3] = fma(2.0f, 3.0f, 1.0f);
    out[4] = fmin(2.0f, 3.0f);
    out[5] = fmax(2.0f, 3.0f);
    out[6] = (float)((int)3.7f);
    out[7] = floor(2.9f);
    out[8] = 5 % 3;
    out[9] = (1 < 2 && 3 > 2) ? 1.0f : 0.0f;
    out[10] = min(7, 4);
    out[11] = -(-2.5f);
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	out := dev.NewBufferF32("out", 16)
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _, err := Bind(prog, "b", []Arg{BufArg(out)})
	if err != nil {
		t.Fatal(err)
	}
	// Single work-item: the kernel writes fixed slots.
	if _, err := dev.Launch("b", fn, gpusim.LaunchParams{Global: 1, Local: 1}); err != nil {
		t.Fatal(err)
	}
	want := []float32{4, 0.5, 3.5, 7, 2, 3, 3, 2, 2, 1, 4, 2.5}
	for i, w := range want {
		if out.HostF32()[i] != w {
			t.Errorf("out[%d] = %g, want %g", i, out.HostF32()[i], w)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	buf := dev.NewBufferF32("buf", 4)
	cases := []struct {
		src  string
		args []Arg
		want string
	}{
		{`__kernel void k(__global float* x) { x[100] = 1.0f; }`,
			[]Arg{BufArg(buf)}, "out of range"},
		{`__kernel void k(__global float* x) { int a = 1 / 0; x[0]=(float)a; }`,
			[]Arg{BufArg(buf)}, "division by zero"},
		{`__kernel void k(__global float* x) { x[0] = nosuch(1.0f); }`,
			[]Arg{BufArg(buf)}, "unknown function"},
		{`__kernel void k(__global float* x) { x[0] = y; }`,
			[]Arg{BufArg(buf)}, "undefined identifier"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		fn, _, err := Bind(prog, "k", c.args)
		if err != nil {
			t.Fatalf("Bind: %v", err)
		}
		_, err = dev.Launch("k", fn, gpusim.LaunchParams{Global: 8, Local: 8})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestBindValidation(t *testing.T) {
	prog, err := Parse(`__kernel void k(__global float* x, int n, __local float* t) { x[0]=(float)n; t[0]=1.0f; }
void helper() {}`)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	fbuf := dev.NewBufferF32("f", 4)
	ibuf := dev.NewBufferI32("i", 4)

	cases := []struct {
		name string
		args []Arg
	}{
		{"nosuch", []Arg{}},
		{"helper", []Arg{}},                                  // not a kernel
		{"k", []Arg{BufArg(fbuf)}},                           // wrong arity
		{"k", []Arg{BufArg(ibuf), IntArg(1), LocalArg(4)}},   // element type mismatch
		{"k", []Arg{IntArg(1), IntArg(1), LocalArg(4)}},      // scalar for pointer
		{"k", []Arg{BufArg(fbuf), FloatArg(1), LocalArg(4)}}, // float for int
		{"k", []Arg{BufArg(fbuf), IntArg(1), IntArg(4)}},     // int for local
		{"k", []Arg{BufArg(fbuf), IntArg(1), LocalArg(0)}},   // empty local
	}
	for i, c := range cases {
		if _, _, err := Bind(prog, c.name, c.args); err == nil {
			t.Errorf("case %d: Bind accepted", i)
		}
	}
	if _, _, err := Bind(prog, "k", []Arg{BufArg(fbuf), IntArg(1), LocalArg(4)}); err != nil {
		t.Errorf("valid binding rejected: %v", err)
	}
}

func TestFlopAccounting(t *testing.T) {
	const src = `
__kernel void k(__global float* x) {
    float a = 1.0f;
    for (int i = 0; i < 10; i++) {
        a = a * 1.5f + 0.25f;  // 2 flops per iteration
    }
    x[get_global_id(0)] = a;
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	out := dev.NewBufferF32("out", 8)
	prog, _ := Parse(src)
	fn, _, err := Bind(prog, "k", []Arg{BufArg(out)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Launch("k", fn, gpusim.LaunchParams{Global: 8, Local: 8})
	if err != nil {
		t.Fatal(err)
	}
	// 8 lanes x 10 iterations x 2 float ops.
	if got := res.Groups[0].Flops; got != 160 {
		t.Errorf("counted %d flops, want 160", got)
	}
	if res.Groups[0].AuxFlops == 0 {
		t.Error("no integer overhead counted")
	}
}

func TestContinueAndNestedLoops(t *testing.T) {
	const src = `
__kernel void k(__global int* out) {
    int total = 0;
    for (int i = 0; i < 6; i++) {
        if (i % 2 == 0) { continue; }
        int j = 0;
        while (1) {
            j++;
            if (j >= i) { break; }
        }
        total += j;
    }
    out[get_global_id(0)] = total; // 1 + 3 + 5
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	out := dev.NewBufferI32("out", 8)
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _, err := Bind(prog, "k", []Arg{BufArg(out)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch("k", fn, gpusim.LaunchParams{Global: 8, Local: 8}); err != nil {
		t.Fatal(err)
	}
	if out.HostI32()[0] != 9 {
		t.Errorf("total = %d, want 9", out.HostI32()[0])
	}
}

func TestMoreRuntimeErrors(t *testing.T) {
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	fbuf := dev.NewBufferF32("f", 4)
	cases := []struct {
		src  string
		want string
	}{
		{`__kernel void k(__global float* x) { x[0] = 1.0f % 2.0f; }`, "integer operands"},
		{`__kernel void k(__global float* x) { int a = 5 % 0; x[0] = (float)a; }`, "modulo by zero"},
		{`float g(float a) { a += 1.0f; }
__kernel void k(__global float* x) { x[0] = g(1.0f); }`, "missing return"},
		{`float g(float a) { return g(a); }
__kernel void k(__global float* x) { x[0] = g(1.0f); }`, "call depth"},
		{`__kernel void inner(__global float* x) { x[0] = 1.0f; }
__kernel void k(__global float* x) { inner(x); x[0] = 0.0f; }`, "cannot call __kernel"},
		{`__kernel void k(__global float* x) { float a = x; x[0] = a; }`, "cannot convert"},
		{`__kernel void k(__global float* x, __local float* t) { t[9] = 1.0f; x[0]=t[9]; }`, "__local index"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		args := []Arg{BufArg(fbuf)}
		if strings.Contains(c.src, "__local") {
			args = append(args, LocalArg(4))
		}
		fn, _, err := Bind(prog, "k", args)
		if err != nil {
			t.Fatalf("Bind(%q): %v", c.src, err)
		}
		_, err = dev.Launch("k", fn, gpusim.LaunchParams{Global: 8, Local: 8, LDSFloats: 4})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestIncDecAndCompoundAssign(t *testing.T) {
	const src = `
__kernel void k(__global float* x, __global int* y) {
    float a = 10.0f;
    a += 5.0f;
    a -= 2.0f;
    a *= 2.0f;
    a /= 4.0f;   // (10+5-2)*2/4 = 6.5
    x[0] = a;
    x[1] += 3.0f;  // compound through pointer
    int b = 3;
    b++;
    b--;
    b++;
    y[0] = b;  // 4
    y[1]--;
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	x := dev.NewBufferF32("x", 4)
	y := dev.NewBufferI32("y", 4)
	x.HostF32()[1] = 1
	y.HostI32()[1] = 7
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _, err := Bind(prog, "k", []Arg{BufArg(x), BufArg(y)})
	if err != nil {
		t.Fatal(err)
	}
	// Single work-item so the += through the pointer is race-free.
	if _, err := dev.Launch("k", fn, gpusim.LaunchParams{Global: 1, Local: 1}); err != nil {
		t.Fatal(err)
	}
	if x.HostF32()[0] != 6.5 {
		t.Errorf("a = %g, want 6.5", x.HostF32()[0])
	}
	if y.HostI32()[0] != 4 {
		t.Errorf("b = %d, want 4", y.HostI32()[0])
	}
}

func TestGeometryBuiltins(t *testing.T) {
	const src = `
__kernel void k(__global int* out) {
    int i = get_global_id(0);
    out[i] = get_group_id(0) * 1000 + get_local_id(0) * 100 +
             get_local_size(0) * 10 + get_num_groups(0) +
             get_global_size(0) * 10000;
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	out := dev.NewBufferI32("out", 16)
	prog, _ := Parse(src)
	fn, _, err := Bind(prog, "k", []Arg{BufArg(out)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch("k", fn, gpusim.LaunchParams{Global: 16, Local: 8}); err != nil {
		t.Fatal(err)
	}
	// Item 9: group 1, local 1, local size 8, groups 2, global size 16.
	want := int32(1*1000 + 1*100 + 8*10 + 2 + 16*10000)
	if out.HostI32()[9] != want {
		t.Errorf("out[9] = %d, want %d", out.HostI32()[9], want)
	}
}
