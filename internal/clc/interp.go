package clc

import (
	"fmt"
	"math"

	"repro/internal/gpusim"
)

// Arg is one bound kernel argument.
type Arg struct {
	// Exactly one of the following is meaningful, per Kind.
	Kind  ArgKind
	Buf   *gpusim.Buffer // KindBuffer
	Int   int32          // KindInt
	Float float32        // KindFloat
	Local int            // KindLocal: float32 slots of group-local memory
}

// ArgKind tags Arg.
type ArgKind int

// Argument kinds.
const (
	KindBuffer ArgKind = iota
	KindInt
	KindFloat
	KindLocal
)

// BufArg binds a device buffer to a __global pointer parameter.
func BufArg(b *gpusim.Buffer) Arg { return Arg{Kind: KindBuffer, Buf: b} }

// IntArg binds an int scalar.
func IntArg(v int32) Arg { return Arg{Kind: KindInt, Int: v} }

// FloatArg binds a float scalar.
func FloatArg(v float32) Arg { return Arg{Kind: KindFloat, Float: v} }

// LocalArg binds n float32 slots of local memory to a __local float*
// parameter (like clSetKernelArg with a size and NULL pointer).
func LocalArg(n int) Arg { return Arg{Kind: KindLocal, Local: n} }

// Bind resolves a kernel by name, checks the arguments against its
// parameter list and returns an executable gpusim kernel plus the local
// memory the launch must allocate.
func Bind(prog *Program, name string, args []Arg) (gpusim.KernelFunc, int, error) {
	return bind(prog, name, args, nil)
}

// BindChecked is Bind with the checked interpreter mode enabled: the
// returned kernel logs every __local access against a shadow store and traps
// on cross-work-item races and divergent barrier counts (see checked.go).
// The CheckedState is private to the returned kernel; each BindChecked call
// produces a single-launch kernel.
func BindChecked(prog *Program, name string, args []Arg) (gpusim.KernelFunc, int, error) {
	return bind(prog, name, args, NewCheckedState())
}

// CheckArgs validates an argument list against a kernel's declared
// signature without building an executable kernel — the eager check behind
// cl's SetArgs.
func CheckArgs(prog *Program, name string, args []Arg) error {
	_, _, _, err := argPlan(prog, name, args)
	return err
}

// argPlan resolves the kernel and validates each argument against the
// declared parameter, computing the __local allocation layout.
func argPlan(prog *Program, name string, args []Arg) (*Function, []int, int, error) {
	fn, ok := prog.Functions[name]
	if !ok {
		return nil, nil, 0, fmt.Errorf("clc: no function %q in program", name)
	}
	if !fn.IsKernel {
		return nil, nil, 0, fmt.Errorf("clc: %q is not a __kernel function", name)
	}
	if len(args) != len(fn.Params) {
		return nil, nil, 0, fmt.Errorf("clc: kernel %q takes %d arguments, got %d",
			name, len(fn.Params), len(args))
	}
	ldsFloats := 0
	ldsOffsets := make([]int, len(args))
	for i, prm := range fn.Params {
		a := args[i]
		switch {
		case prm.Type.Pointer && prm.Type.Space == KWGLOBAL:
			if a.Kind != KindBuffer {
				return nil, nil, 0, fmt.Errorf("clc: kernel %q arg %d (%s %s): need a device buffer",
					name, i, prm.Type, prm.Name)
			}
			if prm.Type.Base == KWFLOAT && !a.Buf.IsFloat() ||
				prm.Type.Base == KWINT && a.Buf.IsFloat() {
				return nil, nil, 0, fmt.Errorf("clc: kernel %q arg %d (%s %s): buffer element type mismatch",
					name, i, prm.Type, prm.Name)
			}
		case prm.Type.Pointer && prm.Type.Space == KWLOCAL:
			if prm.Type.Base != KWFLOAT {
				return nil, nil, 0, fmt.Errorf("clc: kernel %q arg %d: only __local float* is supported", name, i)
			}
			if a.Kind != KindLocal || a.Local <= 0 {
				return nil, nil, 0, fmt.Errorf("clc: kernel %q arg %d (%s %s): need LocalArg(n)",
					name, i, prm.Type, prm.Name)
			}
			ldsOffsets[i] = ldsFloats
			ldsFloats += a.Local
		case prm.Type.Base == KWINT && !prm.Type.Pointer:
			if a.Kind != KindInt {
				return nil, nil, 0, fmt.Errorf("clc: kernel %q arg %d (%s): need IntArg", name, i, prm.Name)
			}
		case prm.Type.Base == KWFLOAT && !prm.Type.Pointer:
			if a.Kind != KindFloat {
				return nil, nil, 0, fmt.Errorf("clc: kernel %q arg %d (%s): need FloatArg", name, i, prm.Name)
			}
		default:
			return nil, nil, 0, fmt.Errorf("clc: kernel %q arg %d: unsupported parameter type %s",
				name, i, prm.Type)
		}
	}
	return fn, ldsOffsets, ldsFloats, nil
}

func bind(prog *Program, name string, args []Arg, chk *CheckedState) (gpusim.KernelFunc, int, error) {
	fn, ldsOffsets, ldsFloats, err := argPlan(prog, name, args)
	if err != nil {
		return nil, 0, err
	}
	localArrays := map[*DeclStmt]int32{}

	// In-kernel __local array declarations claim group memory statically,
	// like OpenCL's compile-time local allocations.
	var scanLocals func(b *Block)
	scanLocals = func(b *Block) {
		for _, st := range b.Stmts {
			switch x := st.(type) {
			case *DeclStmt:
				if x.ArraySize > 0 {
					localArrays[x] = int32(ldsFloats)
					elems := x.ArraySize
					if x.Type.Vec4 {
						elems *= 4
					}
					ldsFloats += elems
				}
			case *Block:
				scanLocals(x)
			case *IfStmt:
				scanLocals(x.Then)
				if eb, ok := x.Else.(*Block); ok {
					scanLocals(eb)
				} else if ei, ok := x.Else.(*IfStmt); ok {
					scanLocals(&Block{Stmts: []Stmt{ei}})
				}
			case *ForStmt:
				scanLocals(x.Body)
			case *WhileStmt:
				scanLocals(x.Body)
			}
		}
	}
	scanLocals(fn.Body)

	kf := func(wi *gpusim.Item) {
		in := &interp{prog: prog, wi: wi, localArrays: localArrays}
		if chk != nil {
			in.chk = chk.item(wi)
		}
		frame := newFrame()
		for i, prm := range fn.Params {
			a := args[i]
			var v value
			switch a.Kind {
			case KindBuffer:
				v = value{typ: prm.Type, buf: a.Buf}
			case KindLocal:
				v = value{typ: prm.Type, ldsOff: int32(ldsOffsets[i]), ldsLen: int32(a.Local), isLDS: true}
			case KindInt:
				v = value{typ: Type{Base: KWINT}, i: a.Int}
			case KindFloat:
				v = value{typ: Type{Base: KWFLOAT}, f: a.Float}
			}
			frame.define(prm.Name, v)
		}
		in.execBlock(fn.Body, frame)
		if in.chk != nil {
			// Reached only on clean return: divergent barrier counts between
			// the group's work-items mean a barrier was not group-uniform.
			in.chk.done(name)
		}
	}
	return kf, ldsFloats, nil
}

// value is a runtime value: a scalar, a float4 vector, or a pointer.
type value struct {
	typ Type
	i   int32
	f   float32
	f4  [4]float32
	// Pointer payload.
	buf    *gpusim.Buffer // __global
	isLDS  bool           // __local
	ldsOff int32
	ldsLen int32
}

func (v value) isFloat() bool { return v.typ.Base == KWFLOAT && !v.typ.Pointer && !v.typ.Vec4 }
func (v value) isInt() bool   { return v.typ.Base == KWINT && !v.typ.Pointer }
func (v value) isVec4() bool  { return v.typ.Vec4 && !v.typ.Pointer }

func (v value) truth() bool {
	if v.isFloat() {
		return v.f != 0
	}
	return v.i != 0
}

func intVal(i int32) value     { return value{typ: Type{Base: KWINT}, i: i} }
func floatVal(f float32) value { return value{typ: Type{Base: KWFLOAT}, f: f} }
func vec4Val(f4 [4]float32) value {
	return value{typ: Type{Base: KWFLOAT, Vec4: true}, f4: f4}
}

// memberIndex maps .x/.y/.z/.w to a component index.
func memberIndex(name string) int {
	switch name {
	case "x":
		return 0
	case "y":
		return 1
	case "z":
		return 2
	case "w":
		return 3
	}
	return -1
}

// frame is a function activation with block scoping.
type frame struct {
	scopes []map[string]*value
}

func newFrame() *frame {
	return &frame{scopes: []map[string]*value{{}}}
}

func (f *frame) push() { f.scopes = append(f.scopes, map[string]*value{}) }
func (f *frame) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *frame) define(name string, v value) {
	f.scopes[len(f.scopes)-1][name] = &v
}

func (f *frame) lookup(name string) *value {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if v, ok := f.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

// ctrl is the statement-level control signal.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// interp executes one work-item.
type interp struct {
	prog        *Program
	wi          *gpusim.Item
	depth       int
	localArrays map[*DeclStmt]int32
	// chk is non-nil in checked mode (BindChecked): every __local access is
	// logged against the launch's shadow store.
	chk *checkedItem
}

func (in *interp) failf(t Token, format string, args ...any) {
	panic(fmt.Sprintf("clc: %s: %s", t.Pos(), fmt.Sprintf(format, args...)))
}

func (in *interp) execBlock(b *Block, fr *frame) (ctrl, value) {
	fr.push()
	defer fr.pop()
	for _, s := range b.Stmts {
		c, v := in.execStmt(s, fr)
		if c != ctrlNone {
			return c, v
		}
	}
	return ctrlNone, value{}
}

func (in *interp) execStmt(s Stmt, fr *frame) (ctrl, value) {
	switch st := s.(type) {
	case *Block:
		return in.execBlock(st, fr)
	case *DeclStmt:
		if st.ArraySize > 0 {
			off, ok := in.localArrays[st]
			if !ok {
				in.failf(st.Tok, "internal: unplanned __local array %q", st.Name)
			}
			elems := int32(st.ArraySize)
			ldsLen := elems
			if st.Type.Vec4 {
				ldsLen *= 4
			}
			ptr := st.Type
			ptr.Pointer = true
			fr.define(st.Name, value{typ: ptr, isLDS: true, ldsOff: off, ldsLen: ldsLen})
			return ctrlNone, value{}
		}
		var v value
		if st.Init != nil {
			v = in.coerce(in.eval(st.Init, fr), st.Type, st.Tok)
		} else {
			v = value{typ: st.Type}
		}
		fr.define(st.Name, v)
		return ctrlNone, value{}
	case *ExprStmt:
		in.eval(st.X, fr)
		return ctrlNone, value{}
	case *IfStmt:
		if in.eval(st.Cond, fr).truth() {
			return in.execBlock(st.Then, fr)
		}
		if st.Else != nil {
			return in.execStmt(st.Else, fr)
		}
		return ctrlNone, value{}
	case *WhileStmt:
		for in.eval(st.Cond, fr).truth() {
			c, v := in.execBlock(st.Body, fr)
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c, v
			}
		}
		return ctrlNone, value{}
	case *ForStmt:
		fr.push()
		defer fr.pop()
		if st.Init != nil {
			in.execStmt(st.Init, fr)
		}
		for st.Cond == nil || in.eval(st.Cond, fr).truth() {
			c, v := in.execBlock(st.Body, fr)
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c, v
			}
			if st.Post != nil {
				in.execStmt(st.Post, fr)
			}
		}
		return ctrlNone, value{}
	case *ReturnStmt:
		if st.Value != nil {
			return ctrlReturn, in.eval(st.Value, fr)
		}
		return ctrlReturn, value{}
	case *BreakStmt:
		return ctrlBreak, value{}
	case *ContinueStmt:
		return ctrlContinue, value{}
	}
	panic(fmt.Sprintf("clc: unknown statement %T", s))
}

// load reads through a pointer value at element index idx, charging the
// device counters.
func (in *interp) load(p value, idx int32, tok Token) value {
	if p.isLDS {
		if p.typ.Vec4 {
			base := 4 * idx
			if base < 0 || base+3 >= p.ldsLen {
				in.failf(tok, "__local float4 index %d out of range", idx)
			}
			var f4 [4]float32
			for c := int32(0); c < 4; c++ {
				if in.chk != nil {
					in.chk.access(p.ldsOff+base+c, false, tok)
				}
				f4[c] = in.wi.LoadLDS(int(p.ldsOff + base + c))
			}
			return vec4Val(f4)
		}
		if idx < 0 || idx >= p.ldsLen {
			in.failf(tok, "__local index %d out of [0,%d)", idx, p.ldsLen)
		}
		if in.chk != nil {
			in.chk.access(p.ldsOff+idx, false, tok)
		}
		return floatVal(in.wi.LoadLDS(int(p.ldsOff + idx)))
	}
	if p.buf == nil {
		in.failf(tok, "indexing a non-pointer value")
	}
	if p.typ.Vec4 {
		var f4 [4]float32
		for c := 0; c < 4; c++ {
			f4[c] = in.wi.LoadGlobalF32(p.buf, 4*int(idx)+c)
		}
		return vec4Val(f4)
	}
	if p.typ.Base == KWFLOAT {
		return floatVal(in.wi.LoadGlobalF32(p.buf, int(idx)))
	}
	return intVal(in.wi.LoadGlobalI32(p.buf, int(idx)))
}

func (in *interp) store(p value, idx int32, v value, tok Token) {
	if p.isLDS {
		if p.typ.Vec4 {
			base := 4 * idx
			if base < 0 || base+3 >= p.ldsLen {
				in.failf(tok, "__local float4 index %d out of range", idx)
			}
			f4 := in.coerce(v, Type{Base: KWFLOAT, Vec4: true}, tok).f4
			for c := int32(0); c < 4; c++ {
				if in.chk != nil {
					in.chk.access(p.ldsOff+base+c, true, tok)
				}
				in.wi.StoreLDS(int(p.ldsOff+base+c), f4[c])
			}
			return
		}
		if idx < 0 || idx >= p.ldsLen {
			in.failf(tok, "__local index %d out of [0,%d)", idx, p.ldsLen)
		}
		if in.chk != nil {
			in.chk.access(p.ldsOff+idx, true, tok)
		}
		in.wi.StoreLDS(int(p.ldsOff+idx), in.coerce(v, Type{Base: KWFLOAT}, tok).f)
		return
	}
	if p.buf == nil {
		in.failf(tok, "assigning through a non-pointer value")
	}
	if p.typ.Vec4 {
		f4 := in.coerce(v, Type{Base: KWFLOAT, Vec4: true}, tok).f4
		for c := 0; c < 4; c++ {
			in.wi.StoreGlobalF32(p.buf, 4*int(idx)+c, f4[c])
		}
		return
	}
	if p.typ.Base == KWFLOAT {
		in.wi.StoreGlobalF32(p.buf, int(idx), in.coerce(v, Type{Base: KWFLOAT}, tok).f)
		return
	}
	in.wi.StoreGlobalI32(p.buf, int(idx), in.coerce(v, Type{Base: KWINT}, tok).i)
}

// coerce converts scalars between int and float (C's usual conversions).
func (in *interp) coerce(v value, to Type, tok Token) value {
	if to.Pointer {
		if v.typ.Pointer || v.buf != nil || v.isLDS {
			return v
		}
		in.failf(tok, "cannot convert %s to %s", v.typ, to)
	}
	if to.Vec4 {
		if v.isVec4() {
			return v
		}
		// Scalar broadcast, as OpenCL allows for implicit widening.
		if v.isFloat() {
			return vec4Val([4]float32{v.f, v.f, v.f, v.f})
		}
		if v.isInt() {
			f := float32(v.i)
			return vec4Val([4]float32{f, f, f, f})
		}
		in.failf(tok, "cannot convert %s to float4", v.typ)
	}
	switch to.Base {
	case KWFLOAT:
		if v.isFloat() {
			return v
		}
		if v.isInt() {
			return floatVal(float32(v.i))
		}
	case KWINT:
		if v.isInt() {
			return v
		}
		if v.isFloat() {
			return intVal(int32(v.f))
		}
	}
	in.failf(tok, "cannot convert %s to %s", v.typ, to)
	return value{}
}

func (in *interp) eval(e Expr, fr *frame) value {
	switch x := e.(type) {
	case *IntLit:
		return intVal(x.Value)
	case *FloatLit:
		return floatVal(x.Value)
	case *Ident:
		if v := fr.lookup(x.Name); v != nil {
			return *v
		}
		if c, ok := namedConstants[x.Name]; ok {
			return intVal(c)
		}
		in.failf(x.Tok, "undefined identifier %q", x.Name)
	case *Unary:
		v := in.eval(x.X, fr)
		switch x.Op {
		case MINUS:
			if v.isVec4() {
				in.wi.Flops(4)
				return vec4Val([4]float32{-v.f4[0], -v.f4[1], -v.f4[2], -v.f4[3]})
			}
			if v.isFloat() {
				in.wi.Flops(1)
				return floatVal(-v.f)
			}
			in.wi.Aux(1)
			return intVal(-v.i)
		case NOT:
			if v.truth() {
				return intVal(0)
			}
			return intVal(1)
		}
	case *Binary:
		return in.evalBinary(x, fr)
	case *Cond:
		if in.eval(x.C, fr).truth() {
			return in.eval(x.A, fr)
		}
		return in.eval(x.B, fr)
	case *Index:
		p := in.eval(x.X, fr)
		i := in.coerce(in.eval(x.I, fr), Type{Base: KWINT}, x.Tok)
		return in.load(p, i.i, x.Tok)
	case *Member:
		v := in.eval(x.X, fr)
		if !v.isVec4() {
			in.failf(x.Tok, "member .%s on non-float4 value of type %s", x.Name, v.typ)
		}
		return floatVal(v.f4[memberIndex(x.Name)])
	case *Assign:
		return in.evalAssign(x, fr)
	case *IncDec:
		one := intVal(1)
		op := PLUSEQ
		if x.Op == MINUSMINU {
			op = MINUSEQ
		}
		return in.evalAssign(&Assign{Op: op, LHS: x.X, RHS: wrapValue(one), Tok: x.Tok}, fr)
	case *Call:
		return in.evalCall(x, fr)
	case *valueExpr:
		return x.v
	}
	panic(fmt.Sprintf("clc: unknown expression %T", e))
}

// valueExpr injects an already-computed value into the AST (used by the
// ++/-- desugaring).
type valueExpr struct{ v value }

func (*valueExpr) exprNode() {}

func wrapValue(v value) Expr { return &valueExpr{v: v} }

func (in *interp) evalAssign(x *Assign, fr *frame) value {
	rhs := in.eval(x.RHS, fr)
	apply := func(cur value) value {
		if x.Op == ASSIGN {
			return in.coerce(rhs, cur.typ, x.Tok)
		}
		var binOp Kind
		switch x.Op {
		case PLUSEQ:
			binOp = PLUS
		case MINUSEQ:
			binOp = MINUS
		case STAREQ:
			binOp = STAR
		case SLASHEQ:
			binOp = SLASH
		}
		return in.coerce(in.arith(binOp, cur, rhs, x.Tok), cur.typ, x.Tok)
	}
	switch lhs := x.LHS.(type) {
	case *Ident:
		slot := fr.lookup(lhs.Name)
		if slot == nil {
			in.failf(lhs.Tok, "undefined identifier %q", lhs.Name)
		}
		nv := apply(*slot)
		*slot = nv
		return nv
	case *Member:
		ci := memberIndex(lhs.Name)
		switch base := lhs.X.(type) {
		case *Ident:
			slot := fr.lookup(base.Name)
			if slot == nil {
				in.failf(base.Tok, "undefined identifier %q", base.Name)
			}
			if !slot.isVec4() {
				in.failf(lhs.Tok, "member assignment on non-float4 %s", slot.typ)
			}
			cur := floatVal(slot.f4[ci])
			nv := apply(cur)
			slot.f4[ci] = in.coerce(nv, Type{Base: KWFLOAT}, lhs.Tok).f
			return nv
		case *Index:
			// Read-modify-write of one component through a float4 pointer.
			p := in.eval(base.X, fr)
			i := in.coerce(in.eval(base.I, fr), Type{Base: KWINT}, base.Tok)
			vecVal := in.load(p, i.i, base.Tok)
			if !vecVal.isVec4() {
				in.failf(lhs.Tok, "member assignment through non-float4 pointer %s", p.typ)
			}
			cur := floatVal(vecVal.f4[ci])
			nv := apply(cur)
			vecVal.f4[ci] = in.coerce(nv, Type{Base: KWFLOAT}, lhs.Tok).f
			in.store(p, i.i, vecVal, base.Tok)
			return nv
		}
		in.failf(lhs.Tok, "unsupported member assignment target")
	case *Index:
		p := in.eval(lhs.X, fr)
		i := in.coerce(in.eval(lhs.I, fr), Type{Base: KWINT}, lhs.Tok)
		elem := Type{Base: p.typ.Base, Vec4: p.typ.Vec4}
		var cur value
		if x.Op == ASSIGN {
			cur = value{typ: elem}
		} else {
			cur = in.load(p, i.i, lhs.Tok)
		}
		nv := apply(cur)
		in.store(p, i.i, nv, lhs.Tok)
		return nv
	}
	in.failf(x.Tok, "unassignable left-hand side")
	return value{}
}

func (in *interp) evalBinary(x *Binary, fr *frame) value {
	// Short-circuit logicals.
	switch x.Op {
	case ANDAND:
		if !in.eval(x.X, fr).truth() {
			return intVal(0)
		}
		if in.eval(x.Y, fr).truth() {
			return intVal(1)
		}
		return intVal(0)
	case OROR:
		if in.eval(x.X, fr).truth() {
			return intVal(1)
		}
		if in.eval(x.Y, fr).truth() {
			return intVal(1)
		}
		return intVal(0)
	}
	a := in.eval(x.X, fr)
	b := in.eval(x.Y, fr)
	return in.arith(x.Op, a, b, x.Tok)
}

// arith applies the usual arithmetic conversions: if either side is float,
// both are.
func (in *interp) arith(op Kind, a, b value, tok Token) value {
	if a.typ.Pointer || b.typ.Pointer {
		in.failf(tok, "pointer arithmetic is not supported; use indexing")
	}
	if a.isVec4() || b.isVec4() {
		av := in.coerce(a, Type{Base: KWFLOAT, Vec4: true}, tok).f4
		bv := in.coerce(b, Type{Base: KWFLOAT, Vec4: true}, tok).f4
		var out [4]float32
		switch op {
		case PLUS:
			for c := range out {
				out[c] = av[c] + bv[c]
			}
		case MINUS:
			for c := range out {
				out[c] = av[c] - bv[c]
			}
		case STAR:
			for c := range out {
				out[c] = av[c] * bv[c]
			}
		case SLASH:
			for c := range out {
				out[c] = av[c] / bv[c]
			}
		default:
			in.failf(tok, "operator %v is not defined on float4", op)
		}
		in.wi.Flops(4)
		return vec4Val(out)
	}
	if a.isFloat() || b.isFloat() {
		af := in.coerce(a, Type{Base: KWFLOAT}, tok).f
		bf := in.coerce(b, Type{Base: KWFLOAT}, tok).f
		switch op {
		case PLUS:
			in.wi.Flops(1)
			return floatVal(af + bf)
		case MINUS:
			in.wi.Flops(1)
			return floatVal(af - bf)
		case STAR:
			in.wi.Flops(1)
			return floatVal(af * bf)
		case SLASH:
			in.wi.Flops(1)
			return floatVal(af / bf)
		case PERCENT:
			in.failf(tok, "%% needs integer operands")
		case EQ:
			return boolVal(af == bf)
		case NE:
			return boolVal(af != bf)
		case LT:
			return boolVal(af < bf)
		case LE:
			return boolVal(af <= bf)
		case GT:
			return boolVal(af > bf)
		case GE:
			return boolVal(af >= bf)
		}
	}
	ai := a.i
	bi := b.i
	switch op {
	case PLUS:
		in.wi.Aux(1)
		return intVal(ai + bi)
	case MINUS:
		in.wi.Aux(1)
		return intVal(ai - bi)
	case STAR:
		in.wi.Aux(1)
		return intVal(ai * bi)
	case SLASH:
		if bi == 0 {
			in.failf(tok, "integer division by zero")
		}
		in.wi.Aux(1)
		return intVal(ai / bi)
	case PERCENT:
		if bi == 0 {
			in.failf(tok, "integer modulo by zero")
		}
		in.wi.Aux(1)
		return intVal(ai % bi)
	case EQ:
		return boolVal(ai == bi)
	case NE:
		return boolVal(ai != bi)
	case LT:
		return boolVal(ai < bi)
	case LE:
		return boolVal(ai <= bi)
	case GT:
		return boolVal(ai > bi)
	case GE:
		return boolVal(ai >= bi)
	}
	in.failf(tok, "unsupported operator %v", op)
	return value{}
}

func boolVal(b bool) value {
	if b {
		return intVal(1)
	}
	return intVal(0)
}

// namedConstants are the OpenCL barrier-fence flags (their values are
// irrelevant to the simulator).
var namedConstants = map[string]int32{
	"CLK_LOCAL_MEM_FENCE":  1,
	"CLK_GLOBAL_MEM_FENCE": 2,
}

// sqrtFlops is the operation count charged for a (reciprocal) square root,
// approximating the hardware's Newton-iteration sequence.
const sqrtFlops = 5

func (in *interp) evalCall(x *Call, fr *frame) value {
	// Casts and constructors desugared by the parser.
	switch x.Name {
	case "(cast)int":
		return in.coerce(in.eval(x.Args[0], fr), Type{Base: KWINT}, x.Tok)
	case "(cast)float":
		return in.coerce(in.eval(x.Args[0], fr), Type{Base: KWFLOAT}, x.Tok)
	case "(make)float4":
		if len(x.Args) == 1 {
			return in.coerce(in.eval(x.Args[0], fr), Type{Base: KWFLOAT, Vec4: true}, x.Tok)
		}
		var f4 [4]float32
		for c := 0; c < 4; c++ {
			f4[c] = in.coerce(in.eval(x.Args[c], fr), Type{Base: KWFLOAT}, x.Tok).f
		}
		return vec4Val(f4)
	}

	args := make([]value, len(x.Args))
	for i, a := range x.Args {
		args[i] = in.eval(a, fr)
	}
	need := func(n int) {
		if len(args) != n {
			in.failf(x.Tok, "%s expects %d arguments, got %d", x.Name, n, len(args))
		}
	}
	f1 := func(fn func(float64) float64, flops int) value {
		need(1)
		in.wi.Flops(flops)
		return floatVal(float32(fn(float64(in.coerce(args[0], Type{Base: KWFLOAT}, x.Tok).f))))
	}

	switch x.Name {
	case "get_global_id":
		need(1)
		return intVal(int32(in.wi.GlobalID()))
	case "get_local_id":
		need(1)
		return intVal(int32(in.wi.LocalID()))
	case "get_group_id":
		need(1)
		return intVal(int32(in.wi.GroupID()))
	case "get_local_size":
		need(1)
		return intVal(int32(in.wi.LocalSize()))
	case "get_global_size":
		need(1)
		return intVal(int32(in.wi.GlobalSize()))
	case "get_num_groups":
		need(1)
		return intVal(int32(in.wi.NumGroups()))
	case "barrier":
		in.wi.Barrier()
		if in.chk != nil {
			in.chk.barrier()
		}
		return value{}
	case "sqrt", "native_sqrt":
		return f1(math.Sqrt, sqrtFlops)
	case "rsqrt", "native_rsqrt":
		need(1)
		in.wi.Flops(sqrtFlops)
		v := float64(in.coerce(args[0], Type{Base: KWFLOAT}, x.Tok).f)
		return floatVal(float32(1 / math.Sqrt(v)))
	case "fabs":
		return f1(math.Abs, 1)
	case "floor":
		return f1(math.Floor, 1)
	case "exp", "native_exp":
		return f1(math.Exp, 8)
	case "log", "native_log":
		return f1(math.Log, 8)
	case "fma", "mad":
		need(3)
		in.wi.Flops(2)
		a := in.coerce(args[0], Type{Base: KWFLOAT}, x.Tok).f
		b := in.coerce(args[1], Type{Base: KWFLOAT}, x.Tok).f
		c := in.coerce(args[2], Type{Base: KWFLOAT}, x.Tok).f
		return floatVal(a*b + c)
	case "dot":
		need(2)
		a := in.coerce(args[0], Type{Base: KWFLOAT, Vec4: true}, x.Tok).f4
		b := in.coerce(args[1], Type{Base: KWFLOAT, Vec4: true}, x.Tok).f4
		in.wi.Flops(7)
		return floatVal(a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3])
	case "fmin", "min":
		need(2)
		return in.minmax(args, x.Tok, true)
	case "fmax", "max":
		need(2)
		return in.minmax(args, x.Tok, false)
	}

	// Program-defined helper function.
	fn, ok := in.prog.Functions[x.Name]
	if !ok {
		in.failf(x.Tok, "unknown function %q", x.Name)
	}
	if fn.IsKernel {
		in.failf(x.Tok, "cannot call __kernel function %q", x.Name)
	}
	if len(args) != len(fn.Params) {
		in.failf(x.Tok, "%s expects %d arguments, got %d", x.Name, len(fn.Params), len(args))
	}
	in.depth++
	if in.depth > 256 {
		in.failf(x.Tok, "call depth exceeded (recursion?)")
	}
	defer func() { in.depth-- }()
	nf := newFrame()
	for i, prm := range fn.Params {
		nf.define(prm.Name, in.coerce(args[i], prm.Type, x.Tok))
	}
	c, v := in.execBlock(fn.Body, nf)
	if fn.RetType.Base != KWVOID && c != ctrlReturn {
		in.failf(x.Tok, "%s: missing return value", x.Name)
	}
	if fn.RetType.Base == KWVOID {
		return value{}
	}
	return in.coerce(v, fn.RetType, x.Tok)
}

func (in *interp) minmax(args []value, tok Token, isMin bool) value {
	a, b := args[0], args[1]
	if a.isFloat() || b.isFloat() {
		in.wi.Flops(1)
		af := in.coerce(a, Type{Base: KWFLOAT}, tok).f
		bf := in.coerce(b, Type{Base: KWFLOAT}, tok).f
		if isMin == (af < bf) {
			return floatVal(af)
		}
		return floatVal(bf)
	}
	in.wi.Aux(1)
	if isMin == (a.i < b.i) {
		return intVal(a.i)
	}
	return intVal(b.i)
}
