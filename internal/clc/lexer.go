package clc

import (
	"fmt"
	"strings"
)

// Lex scans OpenCL C source into tokens. Comments (// and /* */) and the
// preprocessor lines the paper-era SDK headers rely on (#pragma, #define of
// simple constants is NOT expanded — kernels in this repository do not use
// them) are skipped.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("clc: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		case c == '#':
			// Preprocessor line: skip to end of line.
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	mk := func(k Kind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	if l.pos >= len(l.src) {
		return mk(EOF, ""), nil
	}
	c := l.peek()

	switch {
	case isAlpha(c):
		start := l.pos
		for l.pos < len(l.src) && (isAlpha(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.pos]
		if k, ok := keywords[word]; ok {
			return mk(k, word), nil
		}
		return mk(IDENT, word), nil

	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.pos < len(l.src) && l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.pos < len(l.src) && (l.peek() == 'e' || l.peek() == 'E') {
			isFloat = true
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if !isDigit(l.peek()) {
				return Token{}, l.errf("malformed exponent")
			}
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.pos]
		// OpenCL float suffix.
		if l.pos < len(l.src) && (l.peek() == 'f' || l.peek() == 'F') {
			isFloat = true
			l.advance()
		}
		if isFloat {
			return mk(FLOATLIT, strings.TrimSuffix(strings.TrimSuffix(text, "f"), "F")), nil
		}
		return mk(INTLIT, text), nil
	}

	two := func(k Kind, s string) (Token, error) {
		l.advance()
		l.advance()
		return mk(k, s), nil
	}
	one := func(k Kind) (Token, error) {
		l.advance()
		return mk(k, string(c)), nil
	}

	switch c {
	case '(':
		return one(LPAREN)
	case ')':
		return one(RPAREN)
	case '{':
		return one(LBRACE)
	case '}':
		return one(RBRACE)
	case '[':
		return one(LBRACKET)
	case ']':
		return one(RBRACKET)
	case ',':
		return one(COMMA)
	case '.':
		return one(DOT)
	case ';':
		return one(SEMI)
	case '?':
		return one(QUESTION)
	case ':':
		return one(COLON)
	case '+':
		if l.peek2() == '=' {
			return two(PLUSEQ, "+=")
		}
		if l.peek2() == '+' {
			return two(PLUSPLUS, "++")
		}
		return one(PLUS)
	case '-':
		if l.peek2() == '=' {
			return two(MINUSEQ, "-=")
		}
		if l.peek2() == '-' {
			return two(MINUSMINU, "--")
		}
		return one(MINUS)
	case '*':
		if l.peek2() == '=' {
			return two(STAREQ, "*=")
		}
		return one(STAR)
	case '/':
		if l.peek2() == '=' {
			return two(SLASHEQ, "/=")
		}
		return one(SLASH)
	case '%':
		return one(PERCENT)
	case '=':
		if l.peek2() == '=' {
			return two(EQ, "==")
		}
		return one(ASSIGN)
	case '!':
		if l.peek2() == '=' {
			return two(NE, "!=")
		}
		return one(NOT)
	case '<':
		if l.peek2() == '=' {
			return two(LE, "<=")
		}
		return one(LT)
	case '>':
		if l.peek2() == '=' {
			return two(GE, ">=")
		}
		return one(GT)
	case '&':
		if l.peek2() == '&' {
			return two(ANDAND, "&&")
		}
	case '|':
		if l.peek2() == '|' {
			return two(OROR, "||")
		}
	}
	return Token{}, l.errf("unexpected character %q", string(c))
}
