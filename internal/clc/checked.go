package clc

import (
	"fmt"
	"sync"

	"repro/internal/gpusim"
)

// Checked interpreter mode: a shadow access log over __local memory with a
// barrier-based happens-before relation, the dynamic counterpart of the
// static localrace and barrierdiverge analyzers (internal/clc/analysis).
//
// Every work-item carries a barrier phase counter (the number of barriers it
// has executed). Two __local accesses to the same slot by different lanes of
// one group race exactly when they carry the same phase and at least one is
// a write — the group barrier is the only happens-before edge the language
// offers. Keying the check on the phase, not on wall-clock interleaving,
// makes detection deterministic: whichever of the two racing accesses the
// scheduler runs second finds the first one's shadow record and traps.
//
// Barrier divergence is detected at retirement: work-items of one group
// that executed different barrier counts took divergent paths through a
// barrier (undefined behaviour on real hardware; on the simulated device the
// group silently desynchronises). Bounds are already checked on every access
// in both modes (__local in this interpreter, __global in gpusim).
//
// Checked mode costs a mutex per group per access, so it is opt-in:
// BindChecked here, BuildOptions.Checked at the cl layer.

// CheckedState is the shadow store of one checked launch. It must not be
// shared between launches (phases restart at zero).
type CheckedState struct {
	mu     sync.Mutex
	groups map[int]*groupShadow
}

// NewCheckedState returns an empty shadow store for one launch.
func NewCheckedState() *CheckedState {
	return &CheckedState{groups: map[int]*groupShadow{}}
}

type groupShadow struct {
	mu        sync.Mutex
	slots     map[int32]*slotShadow
	exitPhase int
	exitSet   bool
}

// slotShadow remembers the most recent write and read of one __local float
// slot. A single record per kind is enough for deterministic detection: a
// lane's write to its own slot precedes its reads of others' (program
// order), so in any schedule of a racy kernel some access observes a
// conflicting record before it is overwritten.
type slotShadow struct {
	wLane, wPhase int
	hasW          bool
	rLane, rPhase int
	hasR          bool
}

func (st *CheckedState) group(id int) *groupShadow {
	st.mu.Lock()
	defer st.mu.Unlock()
	g := st.groups[id]
	if g == nil {
		g = &groupShadow{slots: map[int32]*slotShadow{}}
		st.groups[id] = g
	}
	return g
}

// checkedItem is the per-work-item view of the shadow state.
type checkedItem struct {
	g     *groupShadow
	lane  int
	phase int
}

func (st *CheckedState) item(wi *gpusim.Item) *checkedItem {
	return &checkedItem{g: st.group(wi.GroupID()), lane: wi.LocalID()}
}

// access records one __local access and traps on a same-phase cross-lane
// conflict. The panic unwinds into the launch error, like every other
// kernel trap.
func (c *checkedItem) access(slot int32, write bool, tok Token) {
	c.g.mu.Lock()
	defer c.g.mu.Unlock()
	s := c.g.slots[slot]
	if s == nil {
		s = &slotShadow{}
		c.g.slots[slot] = s
	}
	if s.hasW && s.wPhase == c.phase && s.wLane != c.lane {
		kind := "read"
		if write {
			kind = "write"
		}
		panic(fmt.Sprintf("clc: %s: checked: localrace: %s of __local slot %d by work-item %d races with a write by work-item %d in the same barrier phase",
			tok.Pos(), kind, slot, c.lane, s.wLane))
	}
	if write {
		if s.hasR && s.rPhase == c.phase && s.rLane != c.lane {
			panic(fmt.Sprintf("clc: %s: checked: localrace: write of __local slot %d by work-item %d races with a read by work-item %d in the same barrier phase",
				tok.Pos(), slot, c.lane, s.rLane))
		}
		s.wLane, s.wPhase, s.hasW = c.lane, c.phase, true
	} else {
		s.rLane, s.rPhase, s.hasR = c.lane, c.phase, true
	}
}

// barrier advances this work-item's phase.
func (c *checkedItem) barrier() { c.phase++ }

// done is called when the work-item's kernel body returns: every item of a
// group must retire with the same barrier count, otherwise a barrier was
// divergent (or skipped by a divergent early return).
func (c *checkedItem) done(kernel string) {
	c.g.mu.Lock()
	defer c.g.mu.Unlock()
	if c.g.exitSet && c.g.exitPhase != c.phase {
		panic(fmt.Sprintf("clc: checked: barrierdiverge: kernel %q: work-items of one group retired after %d and %d barriers (barrier under divergent control flow)",
			kernel, c.g.exitPhase, c.phase))
	}
	c.g.exitPhase, c.g.exitSet = c.phase, true
}
