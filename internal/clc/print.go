package clc

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a parsed program back to canonical OpenCL C source. The
// output re-parses to an identical program (the round-trip property test
// checks Format(Parse(Format(p))) == Format(p)), which makes Format both a
// debugging aid and a normaliser for comparing kernels.
func Format(p *Program) string {
	var b strings.Builder
	for i, name := range p.Order {
		if i > 0 {
			b.WriteByte('\n')
		}
		formatFunction(&b, p.Functions[name])
	}
	return b.String()
}

func formatFunction(b *strings.Builder, fn *Function) {
	if fn.IsKernel {
		b.WriteString("__kernel ")
	}
	fmt.Fprintf(b, "%s %s(", fn.RetType, fn.Name)
	for i, prm := range fn.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", prm.Type, prm.Name)
	}
	b.WriteString(") ")
	formatBlock(b, fn.Body, 0)
	b.WriteByte('\n')
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func formatBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		formatStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch st := s.(type) {
	case *Block:
		formatBlock(b, st, depth)
		b.WriteByte('\n')
	case *DeclStmt:
		fmt.Fprintf(b, "%s %s", st.Type, st.Name)
		if st.ArraySize > 0 {
			fmt.Fprintf(b, "[%d]", st.ArraySize)
		}
		if st.Init != nil {
			b.WriteString(" = ")
			b.WriteString(formatExpr(st.Init))
		}
		b.WriteString(";\n")
	case *ExprStmt:
		b.WriteString(formatExpr(st.X))
		b.WriteString(";\n")
	case *IfStmt:
		fmt.Fprintf(b, "if (%s) ", formatExpr(st.Cond))
		formatBlock(b, st.Then, depth)
		for st.Else != nil {
			if next, ok := st.Else.(*IfStmt); ok {
				fmt.Fprintf(b, " else if (%s) ", formatExpr(next.Cond))
				formatBlock(b, next.Then, depth)
				st = next
				continue
			}
			b.WriteString(" else ")
			formatBlock(b, st.Else.(*Block), depth)
			break
		}
		b.WriteByte('\n')
	case *ForStmt:
		b.WriteString("for (")
		if st.Init != nil {
			b.WriteString(strings.TrimSuffix(strings.TrimSpace(capture(st.Init)), ";"))
		}
		b.WriteString("; ")
		if st.Cond != nil {
			b.WriteString(formatExpr(st.Cond))
		}
		b.WriteString("; ")
		if st.Post != nil {
			b.WriteString(strings.TrimSuffix(strings.TrimSpace(capture(st.Post)), ";"))
		}
		b.WriteString(") ")
		formatBlock(b, st.Body, depth)
		b.WriteByte('\n')
	case *WhileStmt:
		fmt.Fprintf(b, "while (%s) ", formatExpr(st.Cond))
		formatBlock(b, st.Body, depth)
		b.WriteByte('\n')
	case *ReturnStmt:
		if st.Value != nil {
			fmt.Fprintf(b, "return %s;\n", formatExpr(st.Value))
		} else {
			b.WriteString("return;\n")
		}
	case *BreakStmt:
		b.WriteString("break;\n")
	case *ContinueStmt:
		b.WriteString("continue;\n")
	default:
		panic(fmt.Sprintf("clc: Format: unknown statement %T", s))
	}
}

// ExprString renders an expression in the canonical form used by Format.
// Because the rendering is fully parenthesised and deterministic, equal
// strings identify structurally identical expressions — the static analyzers
// use it as a cheap expression-identity key.
func ExprString(e Expr) string { return formatExpr(e) }

// capture renders a statement without indentation or newline (for-clauses).
func capture(s Stmt) string {
	var b strings.Builder
	formatStmt(&b, s, 0)
	return strings.TrimSuffix(b.String(), "\n")
}

func formatExpr(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return strconv.FormatInt(int64(x.Value), 10)
	case *FloatLit:
		s := strconv.FormatFloat(float64(x.Value), 'g', -1, 32)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s + "f"
	case *Unary:
		return fmt.Sprintf("%s(%s)", x.Op, formatExpr(x.X))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", formatExpr(x.X), x.Op, formatExpr(x.Y))
	case *Cond:
		return fmt.Sprintf("(%s ? %s : %s)", formatExpr(x.C), formatExpr(x.A), formatExpr(x.B))
	case *Index:
		return fmt.Sprintf("%s[%s]", formatExpr(x.X), formatExpr(x.I))
	case *Member:
		return fmt.Sprintf("%s.%s", formatExpr(x.X), x.Name)
	case *Call:
		switch {
		case strings.HasPrefix(x.Name, "(cast)"):
			return fmt.Sprintf("(%s)(%s)", strings.TrimPrefix(x.Name, "(cast)"), formatExpr(x.Args[0]))
		case x.Name == "(make)float4":
			parts := make([]string, len(x.Args))
			for i, a := range x.Args {
				parts[i] = formatExpr(a)
			}
			return fmt.Sprintf("(float4)(%s)", strings.Join(parts, ", "))
		}
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = formatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(parts, ", "))
	case *Assign:
		return fmt.Sprintf("%s %s %s", formatExpr(x.LHS), x.Op, formatExpr(x.RHS))
	case *IncDec:
		return fmt.Sprintf("%s%s", formatExpr(x.X), x.Op)
	case *valueExpr:
		return "<value>"
	}
	panic(fmt.Sprintf("clc: Format: unknown expression %T", e))
}
