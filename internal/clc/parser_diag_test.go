package clc

import (
	"strings"
	"testing"
)

// Every lexer and parser error must carry a line:col position so that
// kernelcheck (and build logs) can point at the offending token. Sources
// here start with a newline after the raw-string quote, so the first code
// line is line 2.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantPos string // "line:col" of the offending token
		wantMsg string // substring of the message after the position
	}{
		{
			name: "missing_semicolon",
			src: `
__kernel void k(__global float* a) {
    int i = 0
}`,
			wantPos: "4:1",
			wantMsg: "expected",
		},
		{
			name: "bad_char",
			src: `
__kernel void k(__global float* a) {
    int i = @;
}`,
			wantPos: "3:13",
			wantMsg: "",
		},
		{
			name: "duplicate_param",
			src: `
__kernel void k(__global float* a, int a) {
}`,
			wantPos: "2:40",
			wantMsg: `duplicate parameter "a"`,
		},
		{
			name: "unknown_member",
			src: `
__kernel void k(__global float4* a) {
    float4 v = a[0];
    float x = v.q;
}`,
			wantPos: "4:17",
			wantMsg: "unknown member",
		},
		{
			name: "not_assignable",
			src: `
__kernel void k(__global float* a) {
    a[0] + 1.0f = 2.0f;
}`,
			wantPos: "3:17",
			wantMsg: "not assignable",
		},
		{
			name: "bad_array_size",
			src: `
__kernel void k(__global float* a) {
    __local float t[0];
    t[0] = 1.0f;
}`,
			wantPos: "3:21",
			wantMsg: "bad array size",
		},
		{
			name: "unterminated_block",
			src: `
__kernel void k(__global float* a) {
    a[0] = 1.0f;`,
			wantPos: "3:17",
			wantMsg: "unterminated block",
		},
		{
			name: "float4_component_count",
			src: `
__kernel void k(__global float4* a) {
    a[0] = (float4)(1.0f, 2.0f);
}`,
			wantPos: "3:12",
			wantMsg: "4 components or 1 broadcast",
		},
		{
			name: "no_kernel",
			src: `
float f(float x) {
    return x;
}`,
			wantPos: "4:2",
			wantMsg: "no __kernel function",
		},
		{
			name: "void_variable",
			src: `
__kernel void k(__global float* a) {
    void v;
}`,
			wantPos: "3:5",
			wantMsg: "unexpected void",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("malformed kernel parsed without error")
			}
			msg := err.Error()
			if !strings.HasPrefix(msg, "clc: "+tc.wantPos+":") {
				t.Errorf("error %q does not carry position %s", msg, tc.wantPos)
			}
			if tc.wantMsg != "" && !strings.Contains(msg, tc.wantMsg) {
				t.Errorf("error %q missing %q", msg, tc.wantMsg)
			}
		})
	}
}
