// Package clc compiles and executes a subset of OpenCL C — the language the
// paper's kernels are written in — against the simulated device of
// internal/gpusim. The subset covers what N-body kernels need: scalar int
// and float arithmetic, the float4 vector type with .x/.y/.z/.w access and
// (float4)(...) constructors, __global and __local pointer arguments (to
// float, int and float4), control flow, work-item builtins (get_global_id
// and friends), barrier(), and the math builtins of the interaction kernel
// (sqrt, rsqrt, fma, dot, ...). Format renders a parsed program back to
// canonical source.
//
// Programs are lexed and parsed into an AST once (cl.Context.CreateProgram)
// and then interpreted per work-item. Execution is functionally exact and
// feeds the same cost counters as hand-written kernels: every executed
// floating-point operation is charged to the lane, and every __global /
// __local access is charged as memory traffic. The interpreter is intended
// for validation and small runs — it is an order of magnitude slower than
// the Go kernels in internal/core, which remain the measurement path.
package clc

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT

	// Punctuation.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;

	// Operators.
	ASSIGN    // =
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	PERCENT   // %
	PLUSEQ    // +=
	MINUSEQ   // -=
	STAREQ    // *=
	SLASHEQ   // /=
	PLUSPLUS  // ++
	MINUSMINU // --
	EQ        // ==
	NE        // !=
	LT        // <
	LE        // <=
	GT        // >
	GE        // >=
	ANDAND    // &&
	OROR      // ||
	NOT       // !
	QUESTION  // ?
	COLON     // :
	DOT       // .

	// Keywords.
	KWKERNEL   // __kernel or kernel
	KWGLOBAL   // __global or global
	KWLOCAL    // __local or local
	KWCONST    // const
	KWVOID     // void
	KWINT      // int
	KWFLOAT    // float
	KWFLOAT4   // float4
	KWIF       // if
	KWELSE     // else
	KWFOR      // for
	KWWHILE    // while
	KWRETURN   // return
	KWBREAK    // break
	KWCONTINUE // continue
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "int literal", FLOATLIT: "float literal",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACKET: "[", RBRACKET: "]",
	COMMA: ",", SEMI: ";",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", SLASHEQ: "/=",
	PLUSPLUS: "++", MINUSMINU: "--",
	EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	ANDAND: "&&", OROR: "||", NOT: "!", QUESTION: "?", COLON: ":", DOT: ".",
	KWKERNEL: "__kernel", KWGLOBAL: "__global", KWLOCAL: "__local", KWCONST: "const",
	KWVOID: "void", KWINT: "int", KWFLOAT: "float", KWFLOAT4: "float4",
	KWIF: "if", KWELSE: "else", KWFOR: "for", KWWHILE: "while",
	KWRETURN: "return", KWBREAK: "break", KWCONTINUE: "continue",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"__kernel": KWKERNEL, "kernel": KWKERNEL,
	"__global": KWGLOBAL, "global": KWGLOBAL,
	"__local": KWLOCAL, "local": KWLOCAL,
	"const": KWCONST, "void": KWVOID, "int": KWINT, "float": KWFLOAT,
	"float4": KWFLOAT4,
	"if":     KWIF, "else": KWELSE, "for": KWFOR, "while": KWWHILE,
	"return": KWRETURN, "break": KWBREAK, "continue": KWCONTINUE,
}

// Token is one lexeme with its source position.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

// Pos renders the token's position for error messages.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }
