package clc

import (
	"testing"

	"repro/internal/gpusim"
)

// BenchmarkInterpreter measures the OpenCL C interpreter's throughput on a
// representative inner loop (one softened interaction per iteration) — the
// number that bounds how large a validation run through the source-kernel
// path is practical.
func BenchmarkInterpreter(b *testing.B) {
	const src = `
__kernel void force(__global const float4* posm, __global float4* acc, int n, float eps2) {
    int i = get_global_id(0);
    float4 bi = posm[i];
    float4 ai = (float4)(0.0f);
    for (int j = 0; j < n; j++) {
        float4 r = posm[j] - bi;
        float dist2 = r.x*r.x + r.y*r.y + r.z*r.z + eps2;
        float inv = 1.0f / sqrt(dist2);
        float s = r.w * inv * inv * inv;
        ai.x += r.x * s;
        ai.y += r.y * s;
        ai.z += r.z * s;
    }
    acc[i] = ai;
}`
	prog, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	dev := gpusim.MustNewDevice(gpusim.HD5850())
	const n = 256
	posm := dev.NewBufferF32("posm", 4*n)
	acc := dev.NewBufferF32("acc", 4*n)
	for i := range posm.HostF32() {
		posm.HostF32()[i] = float32(i%17) * 0.1
	}
	fn, _, err := Bind(prog, "force", []Arg{BufArg(posm), BufArg(acc), IntArg(n), FloatArg(0.01)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Launch("force", fn, gpusim.LaunchParams{Global: n, Local: 64}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(n), "interactions/op")
}

func BenchmarkParse(b *testing.B) {
	src := `
float4 body_body(float4 bi, float4 bj, float4 ai, float eps2) {
    float4 r = bj - bi;
    float dist2 = r.x*r.x + r.y*r.y + r.z*r.z + eps2;
    float inv = rsqrt(dist2);
    float s = bj.w * inv * inv * inv;
    ai.x += r.x * s; ai.y += r.y * s; ai.z += r.z * s;
    return ai;
}
__kernel void force(__global const float4* posm, __global float4* acc, int n, float eps2) {
    int i = get_global_id(0);
    float4 ai = (float4)(0.0f);
    for (int j = 0; j < n; j++) { ai = body_body(posm[i], posm[j], ai, eps2); }
    acc[i] = ai;
}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
