package clc

import (
	"strings"
	"testing"

	"repro/internal/gpusim"
)

// testSources are re-used across the printer tests: every kernel family the
// repository ships plus small grammar-coverage programs.
var printerSources = []string{
	`__kernel void k(__global float* x, int n) {
	if (get_global_id(0) == 0) { for (int i = 0; i < n; i++) { x[i] = (float)i * 2.0f; } }
}`,
	`float helper(float a, float b) { return a < b ? a : b + 1.0f; }
__kernel void k(__global float* x) {
	float v = -helper(x[0], 2.5e-1f);
	if (v > 0.0f && x[0] != 3.0f) { x[1] = v; } else if (v == 0.0f) { x[2] = 1.0f; } else { x[3] = 1.0f; }
	while (v < 10.0f) { v += 1.0f; if (v > 5.0f) { break; } }
	x[4] = v;
}`,
	`__kernel void k(__global float4* p, __local float4* t) {
	int l = get_local_id(0);
	t[l] = p[l];
	barrier(CLK_LOCAL_MEM_FENCE);
	float4 a = (float4)(1.0f, 2.0f, 3.0f, 4.0f) + t[l] * 2.0f;
	a.w = dot(a, a);
	p[l] = a;
}`,
}

func TestFormatRoundTrip(t *testing.T) {
	sources := append([]string{}, printerSources...)
	// The shipped kernels must round-trip too; they live in internal/core,
	// so reproduce the grammar-heavy one inline (jw-style loops/barriers).
	sources = append(sources, `__kernel void jw(__global const int* qd, __global float* acc, __local float* tile) {
	int gid = get_group_id(0);
	int qlen = qd[2 * gid + 1];
	for (int qi = 0; qi < qlen; qi++) {
		int kmax = qlen - qi;
		if (kmax > 4) { kmax = 4; }
		tile[get_local_id(0)] = (float)kmax;
		barrier(CLK_LOCAL_MEM_FENCE);
		acc[gid] += tile[0];
		barrier(CLK_LOCAL_MEM_FENCE);
	}
}`)
	for i, src := range sources {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("source %d: parse: %v", i, err)
		}
		out1 := Format(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("source %d: reparse of formatted output: %v\n%s", i, err, out1)
		}
		out2 := Format(p2)
		if out1 != out2 {
			t.Errorf("source %d: format not a fixed point:\n--- first ---\n%s\n--- second ---\n%s",
				i, out1, out2)
		}
	}
}

func TestFormatReadable(t *testing.T) {
	p, err := Parse(printerSources[1])
	if err != nil {
		t.Fatal(err)
	}
	out := Format(p)
	for _, want := range []string{"__kernel void k(", "float helper(float a, float b)",
		"else if", "while (", "break;"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
	// Indentation present.
	if !strings.Contains(out, "\n    ") {
		t.Errorf("no indentation:\n%s", out)
	}
}

func TestFormattedKernelStillRuns(t *testing.T) {
	// The formatter's output is executable: run a formatted kernel and
	// compare results against the original.
	src := printerSources[0]
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	formatted := Format(p)

	run := func(text string) []float32 {
		prog, err := Parse(text)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, text)
		}
		dev := newTestDeviceForPrint(t)
		x := dev.NewBufferF32("x", 16)
		fn, _, err := Bind(prog, "k", []Arg{BufArg(x), IntArg(16)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Launch("k", fn, launchParams16()); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), x.HostF32()...)
	}
	a := run(src)
	b := run(formatted)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("formatted kernel diverges at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func newTestDeviceForPrint(t *testing.T) *gpusim.Device {
	t.Helper()
	return gpusim.MustNewDevice(gpusim.TestDevice())
}

func launchParams16() gpusim.LaunchParams {
	return gpusim.LaunchParams{Global: 16, Local: 8}
}
