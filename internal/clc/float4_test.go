package clc

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gpusim"
)

func TestFloat4Basics(t *testing.T) {
	const src = `
__kernel void k(__global float* out) {
    float4 a = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
    float4 b = (float4)(10.0f);            // broadcast
    float4 c = a + b * a;                  // elementwise
    out[0] = c.x;  // 1 + 10*1 = 11
    out[1] = c.y;  // 2 + 10*2 = 22
    out[2] = c.z;  // 33
    out[3] = c.w;  // 44
    out[4] = dot(a, a);  // 1+4+9+16 = 30
    c.y = 99.0f;
    out[5] = c.y;
    float4 d = a * 2.0f;                   // vector * scalar
    out[6] = d.z;                          // 6
    float4 e = -a;
    out[7] = e.w;                          // -4
    float4 z = 0.0f;                       // scalar init broadcast
    out[8] = z.x + z.y + z.z + z.w;        // 0
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	out := dev.NewBufferF32("out", 16)
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _, err := Bind(prog, "k", []Arg{BufArg(out)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch("k", fn, gpusim.LaunchParams{Global: 1, Local: 1}); err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 33, 44, 30, 99, 6, -4, 0}
	for i, w := range want {
		if out.HostF32()[i] != w {
			t.Errorf("out[%d] = %g, want %g", i, out.HostF32()[i], w)
		}
	}
}

func TestFloat4GlobalPointers(t *testing.T) {
	// __global float4* views a float buffer with stride 4, the idiom the
	// GPU Gems kernel uses for body positions.
	const src = `
__kernel void k(__global const float4* in, __global float4* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float4 v = in[i];
        float4 r = v * v + (float4)(1.0f, 0.0f, 0.0f, 0.0f);
        out[i] = r;
        out[i].w = v.x;  // component write through pointer
    }
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	in := dev.NewBufferF32("in", 32)
	out := dev.NewBufferF32("out", 32)
	for i := 0; i < 32; i++ {
		in.HostF32()[i] = float32(i)
	}
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _, err := Bind(prog, "k", []Arg{BufArg(in), BufArg(out), IntArg(8)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch("k", fn, gpusim.LaunchParams{Global: 8, Local: 8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		base := 4 * i
		v0 := float32(base)
		if out.HostF32()[base] != v0*v0+1 {
			t.Errorf("out[%d].x = %g, want %g", i, out.HostF32()[base], v0*v0+1)
		}
		if out.HostF32()[base+3] != v0 {
			t.Errorf("out[%d].w = %g, want %g", i, out.HostF32()[base+3], v0)
		}
	}
}

func TestFloat4LocalMemory(t *testing.T) {
	const src = `
__kernel void k(__global const float4* in, __global float* out, __local float4* tile) {
    int l = get_local_id(0);
    tile[l] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    int p = get_local_size(0);
    float4 sum = (float4)(0.0f);
    for (int j = 0; j < p; j++) {
        sum += tile[j];
    }
    out[get_global_id(0)] = sum.x + sum.y + sum.z + sum.w;
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	in := dev.NewBufferF32("in", 32)
	out := dev.NewBufferF32("out", 8)
	var want float32
	for i := 0; i < 32; i++ {
		in.HostF32()[i] = float32(i)
		want += float32(i)
	}
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// 8 float4 slots = 32 float slots.
	fn, lds, err := Bind(prog, "k", []Arg{BufArg(in), BufArg(out), LocalArg(32)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch("k", fn, gpusim.LaunchParams{Global: 8, Local: 8, LDSFloats: lds}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if out.HostF32()[i] != want {
			t.Errorf("out[%d] = %g, want %g", i, out.HostF32()[i], want)
		}
	}
}

func TestFloat4Errors(t *testing.T) {
	parseErrs := []string{
		`__kernel void k(__global float* x) { float4 a = (float4)(1.0f, 2.0f); x[0]=a.x; }`, // 2 components
		`__kernel void k(__global float* x) { float4 a = (float4)(0.0f); x[0] = a.q; }`,     // bad member
	}
	for _, src := range parseErrs {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}

	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	buf := dev.NewBufferF32("buf", 8)
	runtimeErrs := []struct{ src, want string }{
		{`__kernel void k(__global float* x) { float a = 1.0f; x[0] = a.x; }`, "non-float4"},
		{`__kernel void k(__global float* x) { float4 a = (float4)(0.0f); float4 b = (float4)(1.0f); x[0] = (a < b) ? 1.0f : 0.0f; }`, "not defined on float4"},
	}
	for _, c := range runtimeErrs {
		prog, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		fn, _, err := Bind(prog, "k", []Arg{BufArg(buf)})
		if err != nil {
			t.Fatal(err)
		}
		_, err = dev.Launch("k", fn, gpusim.LaunchParams{Global: 1, Local: 1})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

// TestFloat4NBodyKernel runs the authentic GPU Gems-style float4 body
// representation through a miniature interaction kernel and checks the
// physics against a hand computation.
func TestFloat4NBodyKernel(t *testing.T) {
	const src = `
float4 body_body(float4 bi, float4 bj, float4 ai, float eps2) {
    float4 r = bj - bi;
    float dist2 = r.x*r.x + r.y*r.y + r.z*r.z + eps2;
    float inv = rsqrt(dist2);
    float s = bj.w * inv * inv * inv;
    ai.x += r.x * s;
    ai.y += r.y * s;
    ai.z += r.z * s;
    return ai;
}

__kernel void force(__global const float4* posm, __global float4* acc,
                    int n, float eps2) {
    int i = get_global_id(0);
    if (i >= n) { return; }
    float4 bi = posm[i];
    float4 ai = (float4)(0.0f);
    for (int j = 0; j < n; j++) {
        ai = body_body(bi, posm[j], ai, eps2);
    }
    acc[i] = ai;
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	posm := dev.NewBufferF32("posm", 8)
	acc := dev.NewBufferF32("acc", 8)
	// Two unit masses at x = -1 and +1.
	copy(posm.HostF32(), []float32{-1, 0, 0, 1, 1, 0, 0, 1})
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, _, err := Bind(prog, "force", []Arg{BufArg(posm), BufArg(acc), IntArg(2), FloatArg(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch("force", fn, gpusim.LaunchParams{Global: 8, Local: 8}); err != nil {
		t.Fatal(err)
	}
	// |a| = 1/4 toward the partner.
	if got := acc.HostF32()[0]; math.Abs(float64(got)-0.25) > 1e-6 {
		t.Errorf("a0.x = %g, want 0.25", got)
	}
	if got := acc.HostF32()[4]; math.Abs(float64(got)+0.25) > 1e-6 {
		t.Errorf("a1.x = %g, want -0.25", got)
	}
}

// TestInKernelLocalArrays exercises the OpenCL idiom of declaring local
// memory inside the kernel instead of passing a __local pointer argument.
func TestInKernelLocalArrays(t *testing.T) {
	const src = `
__kernel void k(__global const float4* in, __global float* out) {
    __local float4 tile[8];
    __local float partial[8];
    int l = get_local_id(0);
    tile[l] = in[get_global_id(0)];
    partial[l] = tile[l].x + tile[l].w;
    barrier(CLK_LOCAL_MEM_FENCE);
    float sum = 0.0f;
    for (int j = 0; j < get_local_size(0); j++) {
        sum += partial[j];
    }
    out[get_global_id(0)] = sum;
}`
	dev := gpusim.MustNewDevice(gpusim.TestDevice())
	in := dev.NewBufferF32("in", 32)
	out := dev.NewBufferF32("out", 8)
	var want float32
	for i := 0; i < 8; i++ {
		in.HostF32()[4*i] = float32(i)        // .x
		in.HostF32()[4*i+3] = float32(10 * i) // .w
		want += float32(i) + float32(10*i)
	}
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn, lds, err := Bind(prog, "k", []Arg{BufArg(in), BufArg(out)})
	if err != nil {
		t.Fatal(err)
	}
	// 8 float4 (32 floats) + 8 floats = 40 slots claimed statically.
	if lds != 40 {
		t.Errorf("static LDS = %d floats, want 40", lds)
	}
	if _, err := dev.Launch("k", fn, gpusim.LaunchParams{Global: 8, Local: 8, LDSFloats: lds}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if out.HostF32()[i] != want {
			t.Errorf("out[%d] = %g, want %g", i, out.HostF32()[i], want)
		}
	}
}

func TestLocalArrayParseErrors(t *testing.T) {
	for _, src := range []string{
		`__kernel void k(__global float* x) { __local float t; x[0]=1.0f; }`,           // no size
		`__kernel void k(__global float* x) { __local float t[0]; x[0]=1.0f; }`,        // bad size
		`__kernel void k(__global float* x) { float t[8]; x[0]=1.0f; }`,                // non-local array
		`__kernel void k(__global float* x) { __local float t[4] = 1.0f; x[0]=t[0]; }`, // initialiser
		`__kernel void k(__global float x) { }`,                                        // space-qualified scalar param
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}
