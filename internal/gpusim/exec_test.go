package gpusim

import (
	"strings"
	"sync/atomic"
	"testing"
)

func testDev(t testing.TB) *Device {
	t.Helper()
	d, err := NewDevice(TestDevice())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLaunchParamValidation(t *testing.T) {
	d := testDev(t)
	noop := func(wi *Item) {}
	cases := []LaunchParams{
		{Global: 0, Local: 8},
		{Global: 8, Local: 0},
		{Global: 10, Local: 8}, // not a multiple
		{Global: 8, Local: 8, LDSFloats: 1 << 20},
	}
	for _, p := range cases {
		if _, err := d.Launch("bad", noop, p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestIDsAndGeometry(t *testing.T) {
	d := testDev(t)
	const global, local = 64, 16
	var hits [global]int32
	_, err := d.Launch("ids", func(wi *Item) {
		atomic.AddInt32(&hits[wi.GlobalID()], 1)
		if wi.GlobalID() != wi.GroupID()*local+wi.LocalID() {
			panic("id mismatch")
		}
		if wi.LocalSize() != local || wi.GlobalSize() != global || wi.NumGroups() != global/local {
			panic("geometry mismatch")
		}
	}, LaunchParams{Global: global, Local: local})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("work-item %d executed %d times", i, h)
		}
	}
}

func TestBarrierLockstep(t *testing.T) {
	// Phase counter: after every barrier, all items of the group must have
	// completed the preceding phase. Item 0 writes, others read after the
	// barrier.
	d := testDev(t)
	const local = 16
	buf := d.NewBufferF32("phase", local)
	res, err := d.Launch("lockstep", func(wi *Item) {
		lds := wi.RawLDS()
		for phase := 0; phase < 10; phase++ {
			if wi.LocalID() == 0 {
				lds[0] = float32(phase)
			}
			wi.Barrier()
			if lds[0] != float32(phase) {
				panic("barrier did not synchronise")
			}
			wi.Barrier()
		}
		if wi.GroupID() == 0 {
			wi.StoreGlobalF32(buf, wi.LocalID(), 1)
		}
	}, LaunchParams{Global: local * 2, Local: local, LDSFloats: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].Barriers != 20 {
		t.Errorf("group 0 crossed %d barriers, want 20", res.Groups[0].Barriers)
	}
}

func TestBarrierWithEarlyExit(t *testing.T) {
	// Half the items return before the barrier; the rest must not deadlock.
	d := testDev(t)
	done := int32(0)
	_, err := d.Launch("early-exit", func(wi *Item) {
		if wi.LocalID()%2 == 0 {
			return
		}
		wi.Barrier()
		atomic.AddInt32(&done, 1)
	}, LaunchParams{Global: 16, Local: 16})
	if err != nil {
		t.Fatal(err)
	}
	if done != 8 {
		t.Errorf("%d items passed the barrier, want 8", done)
	}
}

func TestLDSVisibilityAcrossBarrier(t *testing.T) {
	// Classic tile exchange: each item writes slot l, reads slot (l+1)%p
	// after the barrier.
	d := testDev(t)
	const local = 8
	out := d.NewBufferF32("out", local)
	_, err := d.Launch("exchange", func(wi *Item) {
		l := wi.LocalID()
		wi.StoreLDS(l, float32(l*10))
		wi.Barrier()
		v := wi.LoadLDS((l + 1) % local)
		wi.StoreGlobalF32(out, l, v)
	}, LaunchParams{Global: local, Local: local, LDSFloats: local})
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < local; l++ {
		want := float32(((l + 1) % local) * 10)
		if got := out.HostF32()[l]; got != want {
			t.Errorf("slot %d = %g, want %g", l, got, want)
		}
	}
}

func TestLDSIsPerGroup(t *testing.T) {
	// Groups must not see each other's local memory.
	d := testDev(t)
	out := d.NewBufferF32("out", 16)
	_, err := d.Launch("lds-isolation", func(wi *Item) {
		if wi.LocalID() == 0 {
			wi.StoreLDS(0, float32(wi.GroupID()+1))
		}
		wi.Barrier()
		wi.StoreGlobalF32(out, wi.GlobalID(), wi.LoadLDS(0))
	}, LaunchParams{Global: 16, Local: 8, LDSFloats: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := out.HostF32()
	for i := 0; i < 8; i++ {
		if h[i] != 1 {
			t.Errorf("group 0 item %d saw %g", i, h[i])
		}
		if h[8+i] != 2 {
			t.Errorf("group 1 item %d saw %g", i, h[8+i])
		}
	}
}

func TestCounterAccounting(t *testing.T) {
	d := testDev(t)
	buf := d.NewBufferF32("data", 64)
	ibuf := d.NewBufferI32("idx", 64)
	res, err := d.Launch("counters", func(wi *Item) {
		// Each lane touches its own addresses; the scattered/coalesced
		// classification is the accessor's, not the index pattern's.
		g := wi.GlobalID()
		l := wi.LocalID()
		_ = wi.LoadGlobalF32(buf, g)    // 4 coalesced
		_ = wi.GatherGlobalF32(buf, g)  // 4 scattered
		wi.StoreGlobalF32(buf, g, 1)    // 4 coalesced
		wi.ScatterGlobalF32(buf, g, 2)  // 4 scattered
		_ = wi.LoadGlobalI32(ibuf, g)   // 4 coalesced
		_ = wi.GatherGlobalI32(ibuf, g) // 4 scattered
		wi.StoreGlobalI32(ibuf, g, 3)   // 4 coalesced
		wi.StoreLDS(l, 1)               // 4 LDS
		_ = wi.LoadLDS(l)               // 4 LDS
		wi.ChargeGlobal(100, 10)
		wi.ChargeLDS(8)
		wi.Flops(7)
		wi.Aux(3)
	}, LaunchParams{Global: 16, Local: 8, LDSFloats: 8})
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range res.Groups {
		const lanes = 8
		if g.BytesCoalesced != lanes*(12+4+100) {
			t.Errorf("group %d coalesced = %d", gi, g.BytesCoalesced)
		}
		if g.BytesScattered != lanes*(12+10) {
			t.Errorf("group %d scattered = %d", gi, g.BytesScattered)
		}
		if g.LDSBytes != lanes*16 {
			t.Errorf("group %d lds = %d", gi, g.LDSBytes)
		}
		if g.Flops != lanes*7 || g.AuxFlops != lanes*3 {
			t.Errorf("group %d flops = %d aux = %d", gi, g.Flops, g.AuxFlops)
		}
		// Uniform lanes, wavefront 8, one wavefront per group: max = 10.
		if g.WFMaxFlops != 10 {
			t.Errorf("group %d WFMaxFlops = %d, want 10", gi, g.WFMaxFlops)
		}
	}
}

func TestDivergenceUsesWavefrontMax(t *testing.T) {
	d := testDev(t) // wavefront 8
	res, err := d.Launch("divergent", func(wi *Item) {
		// Lane l performs l flops: wavefront max is 7 per 8-lane wavefront.
		wi.Flops(wi.LocalID())
	}, LaunchParams{Global: 16, Local: 16})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	// Two wavefronts of the 16-wide group: lanes 0-7 max 7, lanes 8-15 max 15.
	if g.WFMaxFlops != 7+15 {
		t.Errorf("WFMaxFlops = %d, want 22", g.WFMaxFlops)
	}
	if g.Flops != 2*(0+1+2+3+4+5+6+7+8+9+10+11+12+13+14+15)/2 {
		t.Errorf("Flops = %d", g.Flops)
	}
	// Divergence factor: wavefront-max total 22 vs convergent
	// mean-per-lane (120/16) * 2 wavefronts = 15.
	want := 22.0 / 15.0
	if got := res.Timing.DivergenceFactor; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("DivergenceFactor = %g, want %g", got, want)
	}
}

func TestDivergenceFactorUniformIsOne(t *testing.T) {
	d := testDev(t)
	res := launchUniform(t, d, 2, 100, 16, 0, 0)
	if got := res.Timing.DivergenceFactor; got < 1-1e-9 || got > 1+1e-9 {
		t.Errorf("uniform kernel DivergenceFactor = %g, want 1", got)
	}
}

func TestKernelPanicBecomesError(t *testing.T) {
	d := testDev(t)
	_, err := d.Launch("panics", func(wi *Item) {
		panic("boom")
	}, LaunchParams{Global: 8, Local: 8})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	// Out-of-range buffer access is also converted.
	buf := d.NewBufferF32("small", 4)
	_, err = d.Launch("overrun", func(wi *Item) {
		wi.StoreGlobalF32(buf, 100, 1)
	}, LaunchParams{Global: 8, Local: 8})
	if err == nil || !strings.Contains(err.Error(), "small") {
		t.Fatalf("overrun err = %v", err)
	}
	// Type confusion too.
	_, err = d.Launch("confused", func(wi *Item) {
		wi.LoadGlobalI32(buf, 0)
	}, LaunchParams{Global: 8, Local: 8})
	if err == nil || !strings.Contains(err.Error(), "int access") {
		t.Fatalf("type confusion err = %v", err)
	}
}

func TestLaunchIsDeterministic(t *testing.T) {
	// Same kernel twice: identical buffer contents and counters.
	run := func() (*Result, []float32) {
		d := testDev(t)
		in := d.NewBufferF32("in", 64)
		out := d.NewBufferF32("out", 64)
		for i := range in.HostF32() {
			in.HostF32()[i] = float32(i)
		}
		res, err := d.Launch("det", func(wi *Item) {
			var sum float32
			for j := 0; j < 64; j++ {
				sum += wi.LoadGlobalF32(in, j)
			}
			wi.Flops(64)
			wi.StoreGlobalF32(out, wi.GlobalID(), sum*float32(wi.GlobalID()))
		}, LaunchParams{Global: 64, Local: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res, append([]float32(nil), out.HostF32()...)
	}
	r1, o1 := run()
	r2, o2 := run()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("output %d differs: %g vs %g", i, o1[i], o2[i])
		}
	}
	if r1.Timing.KernelSeconds != r2.Timing.KernelSeconds {
		t.Errorf("modelled times differ: %g vs %g", r1.Timing.KernelSeconds, r2.Timing.KernelSeconds)
	}
	if r1.TotalFlops() != r2.TotalFlops() {
		t.Errorf("flop counts differ")
	}
}

func TestBufferAllocation(t *testing.T) {
	d := testDev(t)
	f := d.NewBufferF32("f", 10)
	i := d.NewBufferI32("i", 5)
	if f.Len() != 10 || i.Len() != 5 {
		t.Error("lengths wrong")
	}
	if !f.IsFloat() || i.IsFloat() {
		t.Error("type flags wrong")
	}
	if f.Bytes() != 40 || i.Bytes() != 20 {
		t.Error("bytes wrong")
	}
	if d.Allocated() != 60 {
		t.Errorf("Allocated = %d", d.Allocated())
	}
	if f.Name() != "f" {
		t.Error("name wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("HostI32 on float buffer did not panic")
			}
		}()
		f.HostI32()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative size did not panic")
			}
		}()
		d.NewBufferF32("neg", -1)
	}()
}

func TestDeviceConfigValidation(t *testing.T) {
	good := TestDevice()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*DeviceConfig){
		func(c *DeviceConfig) { c.ComputeUnits = 0 },
		func(c *DeviceConfig) { c.LanesPerCU = 0 },
		func(c *DeviceConfig) { c.WavefrontSize = 7 }, // not multiple of lanes
		func(c *DeviceConfig) { c.ClockHz = 0 },
		func(c *DeviceConfig) { c.VLIWPacking = 0 },
		func(c *DeviceConfig) { c.VLIWPacking = 1.5 },
		func(c *DeviceConfig) { c.HideWavefronts = 0 },
		func(c *DeviceConfig) { c.LDSPerCU = 0 },
	}
	for i, m := range mutations {
		c := TestDevice()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := NewDevice(c); err == nil {
			t.Errorf("NewDevice accepted mutation %d", i)
		}
	}
}

func TestHD5850Peak(t *testing.T) {
	c := HD5850()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1440 ALUs x 2 flops x 0.725 GHz = 2088 GFLOPS.
	if p := c.PeakGFLOPS(); p < 2087 || p > 2089 {
		t.Errorf("peak = %g, want ~2088", p)
	}
}

func TestMustNewDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewDevice accepted bad config")
		}
	}()
	bad := TestDevice()
	bad.ComputeUnits = 0
	MustNewDevice(bad)
}

func TestAtomicAddGlobal(t *testing.T) {
	// Histogram: all work-items increment shared counters; the total must
	// be exact despite concurrent execution.
	d := testDev(t)
	hist := d.NewBufferI32("hist", 4)
	res, err := d.Launch("histogram", func(wi *Item) {
		bin := wi.GlobalID() % 4
		wi.AtomicAddGlobalI32(hist, bin, 1)
	}, LaunchParams{Global: 64, Local: 8})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		if hist.HostI32()[b] != 16 {
			t.Errorf("bin %d = %d, want 16", b, hist.HostI32()[b])
		}
	}
	// Charged as scattered traffic.
	var scattered int64
	for _, g := range res.Groups {
		scattered += g.BytesScattered
	}
	if scattered != 64*8 {
		t.Errorf("scattered bytes = %d, want 512", scattered)
	}
	// Type check still applies.
	fbuf := d.NewBufferF32("f", 4)
	if _, err := d.Launch("bad", func(wi *Item) {
		wi.AtomicAddGlobalI32(fbuf, 0, 1)
	}, LaunchParams{Global: 8, Local: 8}); err == nil {
		t.Error("atomic on float buffer accepted")
	}
}
