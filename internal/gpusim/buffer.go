package gpusim

import "fmt"

// Buffer is a device-global memory allocation holding either float32 or
// int32 elements. Host code reads and writes the backing slices directly
// (that traffic is accounted by the queue layer in internal/cl); kernels go
// through the counted accessors on Item so every device-side access is
// charged to the cost model.
type Buffer struct {
	name string
	f    []float32
	i    []int32
}

// NewBufferF32 allocates a float32 buffer of n elements.
func (d *Device) NewBufferF32(name string, n int) *Buffer {
	if n < 0 {
		panic(fmt.Sprintf("gpusim: negative buffer size %d for %q", n, name))
	}
	b := &Buffer{name: name, f: make([]float32, n)}
	d.buffers = append(d.buffers, b)
	d.allocated += int64(n) * 4
	return b
}

// NewBufferI32 allocates an int32 buffer of n elements.
func (d *Device) NewBufferI32(name string, n int) *Buffer {
	if n < 0 {
		panic(fmt.Sprintf("gpusim: negative buffer size %d for %q", n, name))
	}
	b := &Buffer{name: name, i: make([]int32, n)}
	d.buffers = append(d.buffers, b)
	d.allocated += int64(n) * 4
	return b
}

// Name returns the buffer's debug name.
func (b *Buffer) Name() string { return b.name }

// Len returns the element count.
func (b *Buffer) Len() int {
	if b.f != nil {
		return len(b.f)
	}
	return len(b.i)
}

// Bytes returns the allocation size in bytes.
func (b *Buffer) Bytes() int64 { return int64(b.Len()) * 4 }

// IsFloat reports whether the buffer holds float32 elements.
func (b *Buffer) IsFloat() bool { return b.f != nil }

// HostF32 exposes the backing float32 slice for host-side initialisation
// and readback. It panics for int buffers.
func (b *Buffer) HostF32() []float32 {
	if b.f == nil {
		panic(fmt.Sprintf("gpusim: buffer %q is not float32", b.name))
	}
	return b.f
}

// HostI32 exposes the backing int32 slice. It panics for float buffers.
func (b *Buffer) HostI32() []int32 {
	if b.i == nil {
		panic(fmt.Sprintf("gpusim: buffer %q is not int32", b.name))
	}
	return b.i
}
