package gpusim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// KernelFunc is the body of a kernel, invoked once per work-item. Kernels
// are Go closures over their argument buffers and scalars; all device-memory
// traffic and arithmetic must go through the Item accessors so the cost
// model sees it.
type KernelFunc func(wi *Item)

// LaunchParams describes a 1-D NDRange launch.
type LaunchParams struct {
	// Global is the total number of work-items; it must be a positive
	// multiple of Local.
	Global int
	// Local is the work-group size.
	Local int
	// LDSFloats is the number of float32 local-memory slots allocated per
	// work-group (like an OpenCL __local array argument).
	LDSFloats int
}

// Item is the per-work-item execution context handed to a KernelFunc.
type Item struct {
	g      *groupCtx
	global int
	local  int
	ln     laneCounters
}

type laneCounters struct {
	flops          int64 // useful arithmetic (counted toward reported GFLOPS)
	auxFlops       int64 // overhead arithmetic (indexing, loop control)
	bytesCoalesced int64
	bytesScattered int64
	ldsBytes       int64
}

// GlobalID returns the work-item's global id.
func (wi *Item) GlobalID() int { return wi.global }

// LocalID returns the id within the work-group.
func (wi *Item) LocalID() int { return wi.local }

// GroupID returns the work-group id.
func (wi *Item) GroupID() int { return wi.g.id }

// LocalSize returns the work-group size.
func (wi *Item) LocalSize() int { return wi.g.local }

// GlobalSize returns the NDRange size.
func (wi *Item) GlobalSize() int { return wi.g.globalSize }

// NumGroups returns the number of work-groups in the launch.
func (wi *Item) NumGroups() int { return wi.g.numGroups }

// Flops charges n useful floating-point operations to this lane. Useful
// flops are the numerator of reported GFLOPS (38 per body-body interaction
// by the convention in internal/pp).
func (wi *Item) Flops(n int) { wi.ln.flops += int64(n) }

// Aux charges n overhead operations (address arithmetic, loop control,
// reductions) to this lane: they consume ALU issue slots in the cost model
// but are not counted as useful work.
func (wi *Item) Aux(n int) { wi.ln.auxFlops += int64(n) }

// Barrier synchronises the work-group, like OpenCL barrier(CLK_LOCAL_MEM_FENCE).
// Work-items that have already returned do not participate (the executor
// retires them), so uniform-exit kernels cannot deadlock.
func (wi *Item) Barrier() { wi.g.bar.wait() }

func (wi *Item) checkF32(b *Buffer, idx int) {
	if b.f == nil {
		panic(fmt.Sprintf("gpusim: float access to int32 buffer %q", b.name))
	}
	if idx < 0 || idx >= len(b.f) {
		panic(fmt.Sprintf("gpusim: buffer %q index %d out of range [0,%d)", b.name, idx, len(b.f)))
	}
}

func (wi *Item) checkI32(b *Buffer, idx int) {
	if b.i == nil {
		panic(fmt.Sprintf("gpusim: int access to float32 buffer %q", b.name))
	}
	if idx < 0 || idx >= len(b.i) {
		panic(fmt.Sprintf("gpusim: buffer %q index %d out of range [0,%d)", b.name, idx, len(b.i)))
	}
}

// LoadGlobalF32 reads a float32 from global memory with a coalesced access
// pattern (consecutive lanes reading consecutive addresses).
func (wi *Item) LoadGlobalF32(b *Buffer, idx int) float32 {
	wi.checkF32(b, idx)
	wi.ln.bytesCoalesced += 4
	return b.f[idx]
}

// GatherGlobalF32 reads a float32 through a data-dependent index; the cost
// model charges it the device's scatter penalty.
func (wi *Item) GatherGlobalF32(b *Buffer, idx int) float32 {
	wi.checkF32(b, idx)
	wi.ln.bytesScattered += 4
	return b.f[idx]
}

// StoreGlobalF32 writes a float32 to global memory (coalesced).
func (wi *Item) StoreGlobalF32(b *Buffer, idx int, v float32) {
	wi.checkF32(b, idx)
	wi.ln.bytesCoalesced += 4
	b.f[idx] = v
}

// ScatterGlobalF32 writes a float32 through a data-dependent index.
func (wi *Item) ScatterGlobalF32(b *Buffer, idx int, v float32) {
	wi.checkF32(b, idx)
	wi.ln.bytesScattered += 4
	b.f[idx] = v
}

// LoadGlobalI32 reads an int32 from global memory (coalesced).
func (wi *Item) LoadGlobalI32(b *Buffer, idx int) int32 {
	wi.checkI32(b, idx)
	wi.ln.bytesCoalesced += 4
	return b.i[idx]
}

// GatherGlobalI32 reads an int32 through a data-dependent index.
func (wi *Item) GatherGlobalI32(b *Buffer, idx int) int32 {
	wi.checkI32(b, idx)
	wi.ln.bytesScattered += 4
	return b.i[idx]
}

// StoreGlobalI32 writes an int32 to global memory (coalesced).
func (wi *Item) StoreGlobalI32(b *Buffer, idx int, v int32) {
	wi.checkI32(b, idx)
	wi.ln.bytesCoalesced += 4
	b.i[idx] = v
}

// LDSLen returns the number of float32 local-memory slots of the group.
func (wi *Item) LDSLen() int { return len(wi.g.lds) }

// LoadLDS reads local memory slot idx.
func (wi *Item) LoadLDS(idx int) float32 {
	wi.ln.ldsBytes += 4
	return wi.g.lds[idx]
}

// StoreLDS writes local memory slot idx. Data races between work-items are
// the kernel's responsibility, exactly as on hardware; use Barrier.
func (wi *Item) StoreLDS(idx int, v float32) {
	wi.ln.ldsBytes += 4
	wi.g.lds[idx] = v
}

// AtomicAddGlobalI32 atomically adds delta to an int32 buffer element and
// returns the new value, like OpenCL's atomic_add on __global int. The cost
// model charges it as a scattered read-modify-write (hardware serialises
// conflicting atomics through the memory system).
func (wi *Item) AtomicAddGlobalI32(b *Buffer, idx int, delta int32) int32 {
	wi.checkI32(b, idx)
	wi.ln.bytesScattered += 8 // read + write
	wi.ln.auxFlops++
	return atomic.AddInt32(&b.i[idx], delta)
}

// RawGlobalF32 exposes a buffer's backing store without charging any
// traffic. It exists so hot inner loops can run at native speed; the kernel
// MUST charge the equivalent traffic explicitly with ChargeGlobal (tests in
// this package and in internal/core verify the totals).
func (wi *Item) RawGlobalF32(b *Buffer) []float32 { return b.HostF32() }

// RawGlobalI32 is RawGlobalF32 for int32 buffers.
func (wi *Item) RawGlobalI32(b *Buffer) []int32 { return b.HostI32() }

// RawLDS exposes the group's local memory without charging traffic; pair
// with ChargeLDS.
func (wi *Item) RawLDS() []float32 { return wi.g.lds }

// ChargeGlobal charges coalesced and scattered global-memory bytes in bulk.
func (wi *Item) ChargeGlobal(coalescedBytes, scatteredBytes int) {
	wi.ln.bytesCoalesced += int64(coalescedBytes)
	wi.ln.bytesScattered += int64(scatteredBytes)
}

// ChargeLDS charges local-memory bytes in bulk.
func (wi *Item) ChargeLDS(bytes int) { wi.ln.ldsBytes += int64(bytes) }

// groupCtx is the shared state of one executing work-group.
type groupCtx struct {
	id         int
	local      int
	globalSize int
	numGroups  int
	lds        []float32
	bar        *groupBarrier
}

// groupBarrier is a reusable barrier that tolerates work-items retiring
// early (their slots stop being waited for).
type groupBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	active  int
	waiting int
	phase   uint64
	crossed int64
}

func newGroupBarrier(n int) *groupBarrier {
	b := &groupBarrier{active: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *groupBarrier) wait() {
	b.mu.Lock()
	phase := b.phase
	b.waiting++
	if b.waiting >= b.active {
		b.release()
	} else {
		for b.phase == phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

func (b *groupBarrier) retire() {
	b.mu.Lock()
	b.active--
	if b.active > 0 && b.waiting >= b.active {
		b.release()
	}
	b.mu.Unlock()
}

// release must be called with mu held.
func (b *groupBarrier) release() {
	b.waiting = 0
	b.phase++
	b.crossed++
	b.cond.Broadcast()
}

// GroupCost aggregates the counted work of one work-group, the input to the
// cost model.
type GroupCost struct {
	// WFMaxFlops is, summed over the group's wavefronts, the maximum
	// per-lane issue count (useful + aux flops) — the SIMD execution time a
	// divergent wavefront actually pays.
	WFMaxFlops int64
	// Flops is the total useful arithmetic across all lanes.
	Flops int64
	// AuxFlops is the total overhead arithmetic across all lanes.
	AuxFlops       int64
	BytesCoalesced int64
	BytesScattered int64
	LDSBytes       int64
	Barriers       int64
}

// Result reports a completed launch.
type Result struct {
	Kernel string
	Params LaunchParams
	Groups []GroupCost
	Timing Timing
}

// TotalFlops returns the useful arithmetic of the launch.
func (r *Result) TotalFlops() int64 {
	var f int64
	for i := range r.Groups {
		f += r.Groups[i].Flops
	}
	return f
}

// TotalAuxFlops returns the overhead arithmetic (indexing, loop control,
// reductions) of the launch.
func (r *Result) TotalAuxFlops() int64 {
	var f int64
	for i := range r.Groups {
		f += r.Groups[i].AuxFlops
	}
	return f
}

// TotalBytes returns the global-memory traffic of the launch, split into
// coalesced and scattered bytes — the denominator of the launch's arithmetic
// intensity in a roofline analysis.
func (r *Result) TotalBytes() (coalesced, scattered int64) {
	for i := range r.Groups {
		coalesced += r.Groups[i].BytesCoalesced
		scattered += r.Groups[i].BytesScattered
	}
	return coalesced, scattered
}

// GFLOPS returns useful flops divided by modelled kernel time.
func (r *Result) GFLOPS() float64 {
	if r.Timing.KernelSeconds <= 0 {
		return 0
	}
	return float64(r.TotalFlops()) / r.Timing.KernelSeconds / 1e9
}

// Launch executes the kernel over the NDRange and returns its counted work
// and modelled timing. Execution is functionally exact: all work-items run,
// barriers really synchronise, and buffer contents after Launch are the
// kernel's true output. A panic inside the kernel (including buffer
// overruns) is converted into an error identifying the kernel.
func (d *Device) Launch(name string, fn KernelFunc, p LaunchParams) (*Result, error) {
	if p.Local <= 0 {
		return nil, fmt.Errorf("gpusim: kernel %s: non-positive local size %d", name, p.Local)
	}
	if p.Global <= 0 || p.Global%p.Local != 0 {
		return nil, fmt.Errorf("gpusim: kernel %s: global size %d not a positive multiple of local %d",
			name, p.Global, p.Local)
	}
	if p.LDSFloats*4 > d.Config.LDSPerCU {
		return nil, fmt.Errorf("gpusim: kernel %s: LDS request %d bytes exceeds %d per CU",
			name, p.LDSFloats*4, d.Config.LDSPerCU)
	}
	numGroups := p.Global / p.Local
	res := &Result{Kernel: name, Params: p, Groups: make([]GroupCost, numGroups)}

	var firstErr error
	var errMu sync.Mutex
	reportErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > numGroups {
		workers = numGroups
	}
	groupCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gid := range groupCh {
				d.runGroup(name, fn, p, gid, numGroups, &res.Groups[gid], reportErr)
			}
		}()
	}
	for gid := 0; gid < numGroups; gid++ {
		groupCh <- gid
	}
	close(groupCh)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	res.Timing = d.cost(res)
	return res, nil
}

// runGroup executes one work-group: its work-items run as goroutines in
// lockstep at barriers.
func (d *Device) runGroup(name string, fn KernelFunc, p LaunchParams, gid, numGroups int,
	cost *GroupCost, reportErr func(error)) {

	g := &groupCtx{
		id:         gid,
		local:      p.Local,
		globalSize: p.Global,
		numGroups:  numGroups,
		bar:        newGroupBarrier(p.Local),
	}
	if p.LDSFloats > 0 {
		g.lds = make([]float32, p.LDSFloats)
	}
	lanes := make([]laneCounters, p.Local)

	var wg sync.WaitGroup
	for l := 0; l < p.Local; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			defer g.bar.retire()
			defer func() {
				if r := recover(); r != nil {
					reportErr(fmt.Errorf("gpusim: kernel %s: work-item global=%d local=%d group=%d panicked: %v",
						name, gid*p.Local+l, l, gid, r))
				}
			}()
			wi := &Item{g: g, global: gid*p.Local + l, local: l}
			fn(wi)
			lanes[l] = wi.ln
		}(l)
	}
	wg.Wait()

	wf := d.Config.WavefrontSize
	for base := 0; base < p.Local; base += wf {
		var maxIssue int64
		end := base + wf
		if end > p.Local {
			end = p.Local
		}
		for l := base; l < end; l++ {
			if issue := lanes[l].flops + lanes[l].auxFlops; issue > maxIssue {
				maxIssue = issue
			}
		}
		cost.WFMaxFlops += maxIssue
	}
	for l := range lanes {
		cost.Flops += lanes[l].flops
		cost.AuxFlops += lanes[l].auxFlops
		cost.BytesCoalesced += lanes[l].bytesCoalesced
		cost.BytesScattered += lanes[l].bytesScattered
		cost.LDSBytes += lanes[l].ldsBytes
	}
	cost.Barriers = g.bar.crossed
}
