package gpusim

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// decodeTrace unmarshals a Chrome trace document written by WriteTrace.
func decodeTrace(t *testing.T, data []byte) []obs.TraceEvent {
	t.Helper()
	var doc struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.OtherData["device"] == "" {
		t.Error("trace missing device provenance in otherData")
	}
	return doc.TraceEvents
}

func TestWriteTraceEventsAndMetadata(t *testing.T) {
	d := testDev(t)
	res := launchUniform(t, d, 4, 100, 16, 0, 0)
	var buf bytes.Buffer
	if err := d.WriteTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())

	var slices, procNames int
	threadNames := map[int]bool{}
	for _, e := range events {
		switch e.Phase {
		case "X":
			slices++
			if e.Dur <= 0 {
				t.Errorf("slice with non-positive duration: %+v", e)
			}
			if e.TID < 0 || e.TID >= d.Config.ComputeUnits {
				t.Errorf("slice on CU %d outside device", e.TID)
			}
			if e.PID != obs.PIDDeviceBase {
				t.Errorf("slice on pid %d, want %d", e.PID, obs.PIDDeviceBase)
			}
			if b, ok := e.Args["bound"].(string); !ok || (b != "alu" && b != "mem" && b != "lds") {
				t.Errorf("slice with bad bound arg: %+v", e.Args)
			}
		case "M":
			switch e.Name {
			case "process_name":
				procNames++
				if name, _ := e.Args["name"].(string); name == "" {
					t.Errorf("process_name without a name: %+v", e)
				}
			case "thread_name":
				threadNames[e.TID] = true
			default:
				t.Errorf("unexpected metadata event %q", e.Name)
			}
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	if slices != 4 {
		t.Fatalf("trace has %d slices, want 4 (one per group)", slices)
	}
	if procNames != 1 {
		t.Fatalf("trace has %d process_name events, want 1", procNames)
	}
	// Every CU that carries a slice must be named.
	for _, e := range events {
		if e.Phase == "X" && !threadNames[e.TID] {
			t.Errorf("CU %d carries slices but has no thread_name", e.TID)
		}
	}
}

func TestWriteTraceMultiKernelPIDs(t *testing.T) {
	d := testDev(t)
	r1 := launchUniform(t, d, 2, 100, 16, 0, 0)
	r2 := launchUniform(t, d, 3, 200, 16, 0, 0)
	var buf bytes.Buffer
	if err := d.WriteTrace(&buf, r1, r2); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())

	slicesByPID := map[int]int{}
	procByPID := map[int]int{}
	var maxEnd0 float64
	var minStart1 = -1.0
	for _, e := range events {
		switch e.Phase {
		case "X":
			slicesByPID[e.PID]++
			switch e.PID {
			case obs.PIDDeviceBase:
				if end := e.TS + e.Dur; end > maxEnd0 {
					maxEnd0 = end
				}
			case obs.PIDDeviceBase + 1:
				if minStart1 < 0 || e.TS < minStart1 {
					minStart1 = e.TS
				}
			}
		case "M":
			if e.Name == "process_name" {
				procByPID[e.PID]++
			}
		}
	}
	if slicesByPID[obs.PIDDeviceBase] != 2 || slicesByPID[obs.PIDDeviceBase+1] != 3 {
		t.Fatalf("slices per pid = %v, want 2 and 3 on consecutive pids", slicesByPID)
	}
	if procByPID[obs.PIDDeviceBase] != 1 || procByPID[obs.PIDDeviceBase+1] != 1 {
		t.Fatalf("each Result must get exactly one process_name, got %v", procByPID)
	}
	// Results execute in order on an in-order queue: the second kernel's
	// slices start at or after the first kernel's makespan offset.
	if minStart1 < maxEnd0-1e-9 && minStart1 >= 0 {
		// Offset is by r1's makespan cycles; slices of r2 can't precede it.
		t.Errorf("second kernel starts at %gus before first kernel's offset window ends", minStart1)
	}
}

func TestTraceEventsSchedulesAreNonOverlappingPerCU(t *testing.T) {
	d := testDev(t)
	res := launchUniform(t, d, 16, 500, 16, 0, 0)
	events := d.TraceEvents(obs.PIDDeviceBase, res)
	lastEnd := map[int]float64{}
	for _, e := range events {
		if e.Phase != "X" {
			continue
		}
		if e.TS < lastEnd[e.TID]-1e-9 {
			t.Fatalf("CU %d slice at %gus overlaps previous end %gus", e.TID, e.TS, lastEnd[e.TID])
		}
		lastEnd[e.TID] = e.TS + e.Dur
	}
}
