package gpusim

import (
	"math"
	"testing"
)

// launchUniform runs a kernel where every lane charges the given work, and
// returns the result.
func launchUniform(t *testing.T, d *Device, groups int, flops, coalesced, scattered, lds int) *Result {
	t.Helper()
	local := d.Config.WavefrontSize
	res, err := d.Launch("uniform", func(wi *Item) {
		wi.Flops(flops)
		wi.ChargeGlobal(coalesced, scattered)
		wi.ChargeLDS(lds)
	}, LaunchParams{Global: groups * local, Local: local, LDSFloats: 16})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestALUBoundClassification(t *testing.T) {
	d := testDev(t)
	res := launchUniform(t, d, 4, 10000, 4, 0, 0)
	if res.Timing.ALUBoundGroups != 4 || res.Timing.MemBoundGroups != 0 {
		t.Errorf("ALU-heavy launch classified %+v", res.Timing)
	}
	res = launchUniform(t, d, 4, 1, 100000, 0, 0)
	if res.Timing.MemBoundGroups != 4 {
		t.Errorf("mem-heavy launch classified %+v", res.Timing)
	}
	res = launchUniform(t, d, 4, 1, 4, 0, 100000)
	if res.Timing.LDSBoundGroups != 4 {
		t.Errorf("lds-heavy launch classified %+v", res.Timing)
	}
}

func TestMoreWorkTakesLonger(t *testing.T) {
	d := testDev(t)
	small := launchUniform(t, d, 2, 100, 16, 0, 0).Timing.KernelSeconds
	big := launchUniform(t, d, 2, 10000, 16, 0, 0).Timing.KernelSeconds
	if big <= small {
		t.Errorf("100x flops not slower: %g vs %g", big, small)
	}
}

func TestScatterPenalty(t *testing.T) {
	d := testDev(t)
	co := launchUniform(t, d, 2, 1, 40000, 0, 0).Timing.KernelSeconds
	sc := launchUniform(t, d, 2, 1, 0, 40000, 0).Timing.KernelSeconds
	ratio := sc / co
	if math.Abs(ratio-d.Config.ScatterPenalty) > 0.5 {
		t.Errorf("scatter/coalesced time ratio %g, want ~%g", ratio, d.Config.ScatterPenalty)
	}
}

func TestDeviceScalesWithComputeUnits(t *testing.T) {
	// Same total work on a 2-CU and an 8-CU device: the bigger device
	// should be ~4x faster when there are plenty of groups.
	cfg2 := TestDevice()
	cfg8 := TestDevice()
	cfg8.ComputeUnits = 8
	cfg8.MemBandwidth *= 4 // keep per-CU bandwidth constant
	d2, _ := NewDevice(cfg2)
	d8, _ := NewDevice(cfg8)
	t2 := launchUniform(t, d2, 64, 10000, 4, 0, 0).Timing.Cycles
	t8 := launchUniform(t, d8, 64, 10000, 4, 0, 0).Timing.Cycles
	ratio := t2 / t8
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("2CU/8CU cycle ratio = %g, want ~4", ratio)
	}
}

func TestStarvationAtFewGroups(t *testing.T) {
	// One group cannot use more than one CU: GFLOPS should be far below a
	// fully-populated launch.
	d := testDev(t)
	one := launchUniform(t, d, 1, 10000, 4, 0, 0)
	many := launchUniform(t, d, 32, 10000, 4, 0, 0)
	if one.GFLOPS() > 0.7*many.GFLOPS() {
		t.Errorf("single-group launch not starved: %g vs %g GFLOPS", one.GFLOPS(), many.GFLOPS())
	}
}

func TestOccupancyReportedAndBounded(t *testing.T) {
	d := testDev(t)
	res := launchUniform(t, d, 64, 100, 4, 0, 0)
	occ := res.Timing.OccupancyWavefronts
	if occ < 1 || occ > d.Config.MaxWavefrontsPerCU {
		t.Errorf("occupancy %d out of range", occ)
	}
}

func TestLDSLimitsResidency(t *testing.T) {
	// A group that hogs the whole LDS allows only one resident group,
	// exposing memory latency; many small-LDS groups hide it.
	cfg := TestDevice()
	d, _ := NewDevice(cfg)
	local := cfg.WavefrontSize
	mk := func(ldsFloats int) float64 {
		res, err := d.Launch("lds-occ", func(wi *Item) {
			wi.Flops(10)
			wi.ChargeGlobal(4000, 0)
		}, LaunchParams{Global: 64 * local, Local: local, LDSFloats: ldsFloats})
		if err != nil {
			t.Fatal(err)
		}
		return res.Timing.KernelSeconds
	}
	hog := mk(cfg.LDSPerCU / 4) // whole LDS -> 1 resident group
	slim := mk(16)
	if hog <= slim {
		t.Errorf("LDS-hogging launch not slower: %g vs %g", hog, slim)
	}
}

func TestBarrierCost(t *testing.T) {
	d := testDev(t)
	local := d.Config.WavefrontSize
	mk := func(barriers int) float64 {
		res, err := d.Launch("barriers", func(wi *Item) {
			wi.Flops(10)
			for i := 0; i < barriers; i++ {
				wi.Barrier()
			}
		}, LaunchParams{Global: 4 * local, Local: local})
		if err != nil {
			t.Fatal(err)
		}
		return res.Timing.Cycles
	}
	none := mk(0)
	many := mk(100)
	// 4 groups on 2 CUs -> the makespan path holds 2 groups in series.
	wantExtra := 2 * 100 * d.Config.BarrierCycles
	extra := many - none
	if math.Abs(extra-wantExtra) > wantExtra*0.2 {
		t.Errorf("barrier cost: makespan grew %g cycles, want ~%g", extra, wantExtra)
	}
}

func TestScheduleIsLPT(t *testing.T) {
	// Unbalanced groups: makespan must be close to total/CUs, not dominated
	// by bad placement.
	sched, makespan := schedule([]float64{100, 1, 1, 1, 1, 1, 1, 1}, make([]string, 8), 2)
	if len(sched) != 8 {
		t.Fatalf("placed %d groups", len(sched))
	}
	// LPT puts the 100 alone on one CU, the 7 ones on the other.
	if makespan != 100 {
		t.Errorf("makespan = %g, want 100", makespan)
	}
	// All groups scheduled exactly once.
	seen := map[int]bool{}
	for _, sg := range sched {
		if seen[sg.Group] {
			t.Fatalf("group %d scheduled twice", sg.Group)
		}
		seen[sg.Group] = true
		if sg.EndCycle-sg.StartCycle <= 0 {
			t.Errorf("group %d has non-positive duration", sg.Group)
		}
	}
}

func TestTransferSeconds(t *testing.T) {
	d := testDev(t)
	base := d.TransferSeconds(0)
	if base != d.Config.PCIeLatency {
		t.Errorf("zero-byte transfer = %g, want latency %g", base, d.Config.PCIeLatency)
	}
	mb := d.TransferSeconds(1 << 20)
	want := d.Config.PCIeLatency + float64(1<<20)/d.Config.PCIeBandwidth
	if math.Abs(mb-want) > 1e-12 {
		t.Errorf("1MiB transfer = %g, want %g", mb, want)
	}
}

func TestCPUModel(t *testing.T) {
	m := PaperCPU()
	if g := m.GFLOPS(); g < 0.4 || g > 0.7 {
		t.Errorf("paper CPU rate %g GFLOPS, want ~0.55", g)
	}
	if s := m.Seconds(int64(m.ClockHz * m.FlopsPerCycle)); math.Abs(s-1) > 1e-9 {
		t.Errorf("one rate-second of flops took %g s", s)
	}
}

func TestHostModel(t *testing.T) {
	h := PaperHost()
	if h.TreeBuildSeconds(1) != 0 {
		t.Error("single body tree build not free")
	}
	t1 := h.TreeBuildSeconds(1000)
	t2 := h.TreeBuildSeconds(4000)
	if t2 <= t1*3.9 {
		t.Errorf("tree build not superlinear-ish: %g vs %g", t1, t2)
	}
	if h.ListBuildSeconds(0) != 0 || h.ListBuildSeconds(1000) <= 0 {
		t.Error("list build times wrong")
	}
}

func TestALUUtilizationBounded(t *testing.T) {
	d := testDev(t)
	res := launchUniform(t, d, 64, 10000, 4, 0, 0)
	u := res.Timing.ALUUtilization
	if u <= 0 || u > 1 {
		t.Errorf("ALU utilization %g out of (0,1]", u)
	}
}

func TestResultGFLOPS(t *testing.T) {
	d := testDev(t)
	res := launchUniform(t, d, 4, 1000, 4, 0, 0)
	wantFlops := int64(4 * d.Config.WavefrontSize * 1000)
	if res.TotalFlops() != wantFlops {
		t.Errorf("TotalFlops = %d, want %d", res.TotalFlops(), wantFlops)
	}
	g := res.GFLOPS()
	manual := float64(wantFlops) / res.Timing.KernelSeconds / 1e9
	if math.Abs(g-manual) > 1e-9 {
		t.Errorf("GFLOPS = %g, manual %g", g, manual)
	}
}
