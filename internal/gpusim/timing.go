package gpusim

import (
	"math"
	"sort"
)

// Timing is the cost model's verdict on a launch.
type Timing struct {
	// KernelSeconds is the modelled execution time including the fixed
	// launch overhead.
	KernelSeconds float64
	// Cycles is the device makespan in engine cycles (excluding the
	// host-side launch overhead).
	Cycles float64
	// OccupancyWavefronts is the resident wavefronts per CU the schedule
	// achieved.
	OccupancyWavefronts int
	// ALUUtilization is useful flops divided by the flops the device could
	// have executed in KernelSeconds — the efficiency number Figures 4/5
	// track.
	ALUUtilization float64
	// ALUBoundGroups / MemBoundGroups / LDSBoundGroups count which resource
	// dominated each group.
	ALUBoundGroups, MemBoundGroups, LDSBoundGroups int
	// DivergenceFactor is the wavefront-max issue count the SIMD hardware
	// actually pays divided by the mean per-lane issue count (what a
	// perfectly convergent kernel would pay): 1.0 means no divergence, 2.0
	// means wavefronts idled half their lanes' issue slots on average.
	DivergenceFactor float64
	// Schedule is the per-CU placement of groups (for trace export).
	Schedule []ScheduledGroup
}

// ScheduledGroup records where and when one work-group ran in the modelled
// schedule.
type ScheduledGroup struct {
	CU          int
	Group       int
	StartCycle  float64
	EndCycle    float64
	BoundedBy   string // "alu", "mem" or "lds"
	GroupCycles float64
}

// cost converts a launch's counters into modelled time.
//
// The model, per work-group:
//
//	aluCycles = sum_wavefront(maxLaneIssue) * (wfSize/lanes) / (VLIW * FMA * packing)
//	memCycles = (coalesced + penalty*scattered bytes) / perCUShareOfBandwidth
//	ldsCycles = ldsBytes / LDSBytesPerCycle
//	group     = max(alu/occALU, mem/occMEM, lds) + barriers*BarrierCycles
//	            + GroupLaunchCycles
//
// where the occupancy factors expose stalls when too few wavefronts are
// resident per CU to hide ALU-pipeline or memory latency. Groups are then
// placed on CUs with a longest-processing-time greedy schedule; the device
// makespan is the longest CU. Charging each group a per-CU share of the
// memory bandwidth is slightly pessimistic when most CUs are idle, which
// only reinforces the small-N starvation the paper's Figure 4 shows.
func (d *Device) cost(r *Result) Timing {
	c := d.Config
	wfPerGroup := (r.Params.Local + c.WavefrontSize - 1) / c.WavefrontSize

	// Resident wavefronts per CU: bounded by the group cap, the wavefront
	// cap, the LDS capacity, and by how many groups exist to go around.
	groupsByLDS := c.MaxGroupsPerCU
	if r.Params.LDSFloats > 0 {
		if byLDS := c.LDSPerCU / (r.Params.LDSFloats * 4); byLDS < groupsByLDS {
			groupsByLDS = byLDS
		}
	}
	if groupsByLDS < 1 {
		groupsByLDS = 1
	}
	groupsAvail := (len(r.Groups) + c.ComputeUnits - 1) / c.ComputeUnits
	residentGroups := groupsByLDS
	if groupsAvail < residentGroups {
		residentGroups = groupsAvail
	}
	residentWF := residentGroups * wfPerGroup
	if residentWF > c.MaxWavefrontsPerCU {
		residentWF = c.MaxWavefrontsPerCU
	}
	if residentWF < 1 {
		residentWF = 1
	}
	occALU := math.Min(1, float64(residentWF)/float64(c.ALUHideWavefronts))
	occMem := math.Min(1, float64(residentWF)/float64(c.HideWavefronts))

	issueRate := float64(c.VLIWWidth*c.FMA) * c.VLIWPacking
	issueCyclesPerWF := float64(c.WavefrontSize / c.LanesPerCU)
	bytesPerCyclePerCU := c.MemBandwidth / c.ClockHz / float64(c.ComputeUnits)

	t := Timing{OccupancyWavefronts: residentWF}
	groupCycles := make([]float64, len(r.Groups))
	bounds := make([]string, len(r.Groups))
	for i := range r.Groups {
		g := &r.Groups[i]
		alu := float64(g.WFMaxFlops) * issueCyclesPerWF / issueRate / occALU
		mem := (float64(g.BytesCoalesced) + c.ScatterPenalty*float64(g.BytesScattered)) /
			bytesPerCyclePerCU / occMem
		lds := float64(g.LDSBytes) / c.LDSBytesPerCycle
		cycles := alu
		bound := "alu"
		if mem > cycles {
			cycles, bound = mem, "mem"
		}
		if lds > cycles {
			cycles, bound = lds, "lds"
		}
		switch bound {
		case "alu":
			t.ALUBoundGroups++
		case "mem":
			t.MemBoundGroups++
		case "lds":
			t.LDSBoundGroups++
		}
		groupCycles[i] = cycles + float64(g.Barriers)*c.BarrierCycles + c.GroupLaunchCycles
		bounds[i] = bound
	}

	var wfMaxTotal, issuedTotal int64
	for i := range r.Groups {
		g := &r.Groups[i]
		wfMaxTotal += g.WFMaxFlops
		issuedTotal += g.Flops + g.AuxFlops
	}
	if issuedTotal > 0 && r.Params.Local > 0 {
		convergent := float64(issuedTotal) / float64(r.Params.Local) * float64(wfPerGroup)
		if convergent > 0 {
			t.DivergenceFactor = float64(wfMaxTotal) / convergent
		}
	}

	t.Schedule, t.Cycles = schedule(groupCycles, bounds, c.ComputeUnits)
	t.KernelSeconds = t.Cycles/c.ClockHz + c.KernelLaunchSeconds
	if t.KernelSeconds > 0 {
		t.ALUUtilization = float64(r.TotalFlops()) / (t.KernelSeconds * c.PeakGFLOPS() * 1e9)
	}
	return t
}

// schedule places groups on CUs greedily, longest first, and returns the
// placement and makespan. Placement order is deterministic.
func schedule(groupCycles []float64, bounds []string, cus int) ([]ScheduledGroup, float64) {
	order := make([]int, len(groupCycles))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return groupCycles[order[a]] > groupCycles[order[b]] })

	load := make([]float64, cus)
	placed := make([]ScheduledGroup, 0, len(groupCycles))
	for _, gi := range order {
		cu := 0
		for k := 1; k < cus; k++ {
			if load[k] < load[cu] {
				cu = k
			}
		}
		placed = append(placed, ScheduledGroup{
			CU:          cu,
			Group:       gi,
			StartCycle:  load[cu],
			EndCycle:    load[cu] + groupCycles[gi],
			BoundedBy:   bounds[gi],
			GroupCycles: groupCycles[gi],
		})
		load[cu] += groupCycles[gi]
	}
	var makespan float64
	for _, l := range load {
		if l > makespan {
			makespan = l
		}
	}
	return placed, makespan
}

// TransferSeconds models one host<->device copy of the given size over the
// device's PCIe link.
func (d *Device) TransferSeconds(bytes int64) float64 {
	return d.Config.PCIeLatency + float64(bytes)/d.Config.PCIeBandwidth
}

// CPUModel is the analytic model of the paper's CPU baseline (a Pentium 4
// at 3.0 GHz running the scalar direct sum): a sustained scalar rate far
// below the GPU's, dominated by the divide/sqrt chain of the interaction
// kernel.
type CPUModel struct {
	Name          string
	ClockHz       float64
	FlopsPerCycle float64
}

// PaperCPU returns the calibrated baseline: an effective ~0.55 GFLOPS
// (about 5.4 cycles per flop — a scalar x87 inner loop whose divide/sqrt
// chain stalls the Pentium 4 pipeline), which reproduces the paper's ~400x
// GPU-vs-CPU ratio against the modelled HD 5850 jw pipeline.
func PaperCPU() CPUModel {
	return CPUModel{Name: "Pentium 4 3.0 GHz (modelled)", ClockHz: 3.0e9, FlopsPerCycle: 0.185}
}

// Seconds returns the modelled time to execute the given useful flops.
func (m CPUModel) Seconds(flops int64) float64 {
	return float64(flops) / (m.ClockHz * m.FlopsPerCycle)
}

// GFLOPS returns the model's sustained rate.
func (m CPUModel) GFLOPS() float64 { return m.ClockHz * m.FlopsPerCycle / 1e9 }

// HostModel models the host-side work of the jw-parallel pipeline (octree
// build and interaction-list construction run on the CPU while the GPU
// evaluates forces). Rates are ops-per-second calibrated to the same
// paper-era host as PaperCPU.
type HostModel struct {
	// TreeOpsPerBodyLevel is the work per body per tree level of the build.
	TreeOpsPerBodyLevel float64
	// ListOpsPerEntry is the work per emitted interaction-list entry.
	ListOpsPerEntry float64
	// OpsPerSecond is the host's sustained rate for this pointer-chasing
	// integer work.
	OpsPerSecond float64
}

// PaperHost returns the calibrated host model.
func PaperHost() HostModel {
	return HostModel{TreeOpsPerBodyLevel: 60, ListOpsPerEntry: 12, OpsPerSecond: 1.2e9}
}

// TreeBuildSeconds models an octree build over n bodies.
func (h HostModel) TreeBuildSeconds(n int) float64 {
	if n < 2 {
		return 0
	}
	levels := math.Log2(float64(n))
	return float64(n) * levels * h.TreeOpsPerBodyLevel / h.OpsPerSecond
}

// TreeRefitSeconds models a summary-only refresh of an existing octree
// topology (COM/mass/bounds recomputed bottom-up, no re-partitioning) —
// one level's worth of build work per body instead of the full log n.
func (h HostModel) TreeRefitSeconds(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * h.TreeOpsPerBodyLevel / h.OpsPerSecond
}

// ListBuildSeconds models interaction-list construction emitting the given
// total number of entries.
func (h HostModel) ListBuildSeconds(entries int64) float64 {
	return float64(entries) * h.ListOpsPerEntry / h.OpsPerSecond
}
