// Package gpusim simulates an OpenCL-class GPU well enough to run and cost
// the paper's N-body kernels.
//
// The simulator has two halves that share one execution:
//
//   - A functional half: kernels are ordinary Go functions invoked once per
//     work-item, with real work-group barriers (work-items of a group run as
//     lockstep goroutines) and real local memory, so a kernel's numerical
//     output can be validated against the CPU reference.
//
//   - An analytic half: every global-memory access, local-memory access and
//     ALU operation a kernel performs is charged to per-work-item counters,
//     and a cost model calibrated to the AMD Radeon HD 5850 (the paper's
//     device) converts those counters into simulated cycles. SIMD divergence
//     is captured exactly the way hardware pays for it: a wavefront's ALU
//     time is the *maximum* over its lanes, not the mean.
//
// The paper's PTPM (parallel time-space processing model) reasons about how
// a computation grid maps onto the space axis (work-items / wavefronts /
// compute units) and the time axis (execution steps); this package is the
// machine that makes those mappings executable and measurable.
package gpusim

import "fmt"

// DeviceConfig describes the simulated device. All rates are per the
// datasheet of the modelled hardware; the calibration fields at the bottom
// capture achievable (rather than theoretical) efficiency and are documented
// where they are used by the cost model in timing.go.
type DeviceConfig struct {
	Name string

	// ComputeUnits is the number of SIMD engines (CUs).
	ComputeUnits int
	// LanesPerCU is the number of stream cores per CU; a wavefront issues
	// over WavefrontSize/LanesPerCU cycles.
	LanesPerCU int
	// VLIWWidth is the number of ALUs per stream core (5 on Evergreen).
	VLIWWidth int
	// FMA is the flops per ALU per cycle (2 with multiply-add).
	FMA int
	// ClockHz is the engine clock.
	ClockHz float64
	// WavefrontSize is the SIMD width seen by the scheduler (64 on AMD).
	WavefrontSize int
	// MaxWavefrontsPerCU bounds resident wavefronts per CU.
	MaxWavefrontsPerCU int
	// MaxGroupsPerCU bounds resident work-groups per CU.
	MaxGroupsPerCU int
	// LDSPerCU is local memory per CU in bytes.
	LDSPerCU int

	// MemBandwidth is global-memory bandwidth in bytes/second.
	MemBandwidth float64
	// ScatterPenalty multiplies the cost of uncoalesced (gather/scatter)
	// global accesses relative to coalesced ones.
	ScatterPenalty float64
	// LDSBytesPerCycle is local-memory bandwidth per CU in bytes/cycle.
	LDSBytesPerCycle float64

	// PCIeBandwidth is host<->device bandwidth in bytes/second and
	// PCIeLatency the fixed per-transfer latency in seconds.
	PCIeBandwidth float64
	PCIeLatency   float64

	// VLIWPacking is the achievable fraction of the VLIW issue slots a real
	// compiler fills for this kind of kernel (~0.6 for Evergreen N-body
	// inner loops).
	VLIWPacking float64
	// HideWavefronts is the number of resident wavefronts per CU needed to
	// fully hide memory latency; fewer wavefronts expose a proportional
	// fraction of stalls.
	HideWavefronts int
	// ALUHideWavefronts is the analogous figure for the ALU pipeline depth.
	ALUHideWavefronts int
	// BarrierCycles is the cost of one work-group barrier.
	BarrierCycles float64
	// GroupLaunchCycles is the fixed scheduling cost per work-group.
	GroupLaunchCycles float64
	// KernelLaunchSeconds is the fixed host-side cost per kernel launch.
	KernelLaunchSeconds float64
}

// HD5850 returns the configuration of the paper's test device: an AMD
// Radeon HD 5850 (Cypress PRO): 18 SIMD engines x 16 stream cores x VLIW5 at
// 725 MHz = 1440 ALUs, 2.09 TFLOPS single-precision peak, 128 GB/s GDDR5,
// 32 KiB LDS per CU, on PCIe 2.0 x16.
func HD5850() DeviceConfig {
	return DeviceConfig{
		Name:               "AMD Radeon HD 5850 (simulated)",
		ComputeUnits:       18,
		LanesPerCU:         16,
		VLIWWidth:          5,
		FMA:                2,
		ClockHz:            725e6,
		WavefrontSize:      64,
		MaxWavefrontsPerCU: 24,
		MaxGroupsPerCU:     8,
		LDSPerCU:           32 << 10,

		MemBandwidth:     128e9,
		ScatterPenalty:   4,
		LDSBytesPerCycle: 128,

		PCIeBandwidth: 5.5e9,
		PCIeLatency:   15e-6,

		VLIWPacking:         0.62,
		HideWavefronts:      7,
		ALUHideWavefronts:   2,
		BarrierCycles:       32,
		GroupLaunchCycles:   300,
		KernelLaunchSeconds: 9e-6,
	}
}

// HD5870 returns the configuration of the HD 5850's bigger sibling (Cypress
// XT): 20 SIMD engines at 850 MHz (2.72 TFLOPS peak) and 153.6 GB/s — the
// obvious "what if" upgrade for the paper's testbed, used by the
// cross-device experiment.
func HD5870() DeviceConfig {
	c := HD5850()
	c.Name = "AMD Radeon HD 5870 (simulated)"
	c.ComputeUnits = 20
	c.ClockHz = 850e6
	c.MemBandwidth = 153.6e9
	return c
}

// GTX280Class returns a scalar-SIMT device of the paper's era roughly
// shaped like NVIDIA's GTX 280 (the hardware the i-parallel and w-parallel
// baselines were first published on): 30 multiprocessors x 8 scalar cores
// at 1.296 GHz (622 GFLOPS MAD peak), warp size 32, 16 KiB shared memory,
// 141.7 GB/s. Scalar issue means VLIWWidth 1 with near-perfect packing —
// less raw peak than Cypress but a much easier compilation target.
func GTX280Class() DeviceConfig {
	return DeviceConfig{
		Name:               "GTX 280-class SIMT (simulated)",
		ComputeUnits:       30,
		LanesPerCU:         8,
		VLIWWidth:          1,
		FMA:                2,
		ClockHz:            1.296e9,
		WavefrontSize:      32,
		MaxWavefrontsPerCU: 32,
		MaxGroupsPerCU:     8,
		LDSPerCU:           16 << 10,

		MemBandwidth:     141.7e9,
		ScatterPenalty:   4,
		LDSBytesPerCycle: 64,

		PCIeBandwidth: 5.5e9,
		PCIeLatency:   15e-6,

		VLIWPacking:         0.95,
		HideWavefronts:      8,
		ALUHideWavefronts:   2,
		BarrierCycles:       24,
		GroupLaunchCycles:   300,
		KernelLaunchSeconds: 9e-6,
	}
}

// TestDevice returns a deliberately tiny device (2 CUs, wavefront 8) whose
// behaviour is easy to reason about in unit tests of the executor and cost
// model.
func TestDevice() DeviceConfig {
	return DeviceConfig{
		Name:               "test-device",
		ComputeUnits:       2,
		LanesPerCU:         4,
		VLIWWidth:          1,
		FMA:                1,
		ClockHz:            1e6,
		WavefrontSize:      8,
		MaxWavefrontsPerCU: 8,
		MaxGroupsPerCU:     4,
		LDSPerCU:           4 << 10,

		MemBandwidth:     1e9,
		ScatterPenalty:   4,
		LDSBytesPerCycle: 16,

		PCIeBandwidth: 1e9,
		PCIeLatency:   1e-6,

		VLIWPacking:         1,
		HideWavefronts:      2,
		ALUHideWavefronts:   1,
		BarrierCycles:       4,
		GroupLaunchCycles:   10,
		KernelLaunchSeconds: 1e-6,
	}
}

// PeakGFLOPS returns the theoretical single-precision peak of the device in
// GFLOPS (1440 ALUs x 2 x 725 MHz = 2088 for the HD 5850).
func (c DeviceConfig) PeakGFLOPS() float64 {
	alus := float64(c.ComputeUnits * c.LanesPerCU * c.VLIWWidth)
	return alus * float64(c.FMA) * c.ClockHz / 1e9
}

// Validate reports configuration errors.
func (c DeviceConfig) Validate() error {
	switch {
	case c.ComputeUnits <= 0:
		return fmt.Errorf("gpusim: %s: ComputeUnits must be positive", c.Name)
	case c.LanesPerCU <= 0 || c.VLIWWidth <= 0 || c.FMA <= 0:
		return fmt.Errorf("gpusim: %s: ALU geometry must be positive", c.Name)
	case c.WavefrontSize <= 0 || c.WavefrontSize%c.LanesPerCU != 0:
		return fmt.Errorf("gpusim: %s: WavefrontSize %d must be a positive multiple of LanesPerCU %d",
			c.Name, c.WavefrontSize, c.LanesPerCU)
	case c.ClockHz <= 0 || c.MemBandwidth <= 0 || c.PCIeBandwidth <= 0:
		return fmt.Errorf("gpusim: %s: rates must be positive", c.Name)
	case c.VLIWPacking <= 0 || c.VLIWPacking > 1:
		return fmt.Errorf("gpusim: %s: VLIWPacking %g out of (0,1]", c.Name, c.VLIWPacking)
	case c.HideWavefronts <= 0 || c.ALUHideWavefronts <= 0:
		return fmt.Errorf("gpusim: %s: latency-hiding wavefront counts must be positive", c.Name)
	case c.LDSPerCU <= 0 || c.LDSBytesPerCycle <= 0:
		return fmt.Errorf("gpusim: %s: LDS configuration must be positive", c.Name)
	}
	return nil
}

// Device is a simulated GPU: a configuration plus allocated buffers.
type Device struct {
	Config DeviceConfig

	buffers   []*Buffer
	allocated int64
}

// NewDevice creates a device with the given configuration.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{Config: cfg}, nil
}

// MustNewDevice is NewDevice for known-good configurations; it panics on
// configuration errors.
func MustNewDevice(cfg DeviceConfig) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Allocated returns the total bytes of device buffers currently allocated.
func (d *Device) Allocated() int64 { return d.allocated }
