package gpusim

import (
	"fmt"
	"testing"
)

func BenchmarkLaunchOverhead(b *testing.B) {
	d := MustNewDevice(HD5850())
	for _, groups := range []int{16, 256} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Launch("noop", func(wi *Item) {}, LaunchParams{
					Global: groups * 64, Local: 64,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	d := MustNewDevice(HD5850())
	for _, local := range []int{64, 256} {
		b.Run(fmt.Sprintf("local=%d", local), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Launch("barrier", func(wi *Item) {
					for k := 0; k < 16; k++ {
						wi.Barrier()
					}
				}, LaunchParams{Global: 4 * local, Local: local}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCountedAccess(b *testing.B) {
	d := MustNewDevice(HD5850())
	buf := d.NewBufferF32("data", 1<<16)
	b.Run("counted-loads", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Launch("loads", func(wi *Item) {
				var sum float32
				for j := 0; j < 1024; j++ {
					sum += wi.LoadGlobalF32(buf, j)
				}
				_ = sum
			}, LaunchParams{Global: 256, Local: 64}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw-bulk-charged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Launch("raw", func(wi *Item) {
				data := wi.RawGlobalF32(buf)
				wi.ChargeGlobal(4*1024, 0)
				var sum float32
				for j := 0; j < 1024; j++ {
					sum += data[j]
				}
				_ = sum
			}, LaunchParams{Global: 256, Local: 64}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCostModel(b *testing.B) {
	d := MustNewDevice(HD5850())
	res, err := d.Launch("work", func(wi *Item) {
		wi.Flops(1000)
		wi.ChargeGlobal(64, 16)
	}, LaunchParams{Global: 1024 * 64, Local: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Timing = d.cost(res)
	}
}
