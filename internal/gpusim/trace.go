package gpusim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one entry of the Chrome trace-event format ("X" = complete
// event with explicit duration), viewable in chrome://tracing or Perfetto.
type traceEvent struct {
	Name     string         `json:"name"`
	Category string         `json:"cat"`
	Phase    string         `json:"ph"`
	TS       float64        `json:"ts"`  // microseconds
	Dur      float64        `json:"dur"` // microseconds
	PID      int            `json:"pid"`
	TID      int            `json:"tid"`
	Args     map[string]any `json:"args,omitempty"`
}

// WriteTrace exports the modelled schedule of a launch as Chrome trace JSON:
// one track per compute unit, one slice per work-group, annotated with the
// group's bounding resource and cycle count. It is a debugging aid for the
// PTPM analyses (an unbalanced schedule or a memory-bound cliff is obvious
// at a glance).
func (d *Device) WriteTrace(w io.Writer, results ...*Result) error {
	var events []traceEvent
	usPerCycle := 1e6 / d.Config.ClockHz
	var offset float64
	for _, r := range results {
		sched := append([]ScheduledGroup(nil), r.Timing.Schedule...)
		sort.Slice(sched, func(a, b int) bool {
			if sched[a].CU != sched[b].CU {
				return sched[a].CU < sched[b].CU
			}
			return sched[a].StartCycle < sched[b].StartCycle
		})
		for _, sg := range sched {
			events = append(events, traceEvent{
				Name:     fmt.Sprintf("%s g%d", r.Kernel, sg.Group),
				Category: sg.BoundedBy,
				Phase:    "X",
				TS:       offset + sg.StartCycle*usPerCycle,
				Dur:      sg.GroupCycles * usPerCycle,
				PID:      0,
				TID:      sg.CU,
				Args: map[string]any{
					"bound":  sg.BoundedBy,
					"cycles": sg.GroupCycles,
					"flops":  r.Groups[sg.Group].Flops,
				},
			})
		}
		offset += r.Timing.Cycles * usPerCycle
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
		"otherData": map[string]any{
			"device": d.Config.Name,
		},
	})
}
