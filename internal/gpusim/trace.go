package gpusim

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// TraceEvents converts the modelled schedules of the given launches into
// Chrome trace events on the device described by cfg: one trace *process*
// per Result (pid = basePID+i, named after the kernel), one *thread* per
// compute unit, one slice per work-group annotated with the group's bounding
// resource and cycle count. Results are laid out sequentially on the
// timeline, as an in-order queue would execute them. Metadata
// (process_name / thread_name) events are included so multi-kernel traces
// stay legible in Perfetto.
func TraceEvents(cfg DeviceConfig, basePID int, results ...*Result) []obs.TraceEvent {
	var events []obs.TraceEvent
	usPerCycle := 1e6 / cfg.ClockHz
	var offset float64
	for ri, r := range results {
		pid := basePID + ri
		events = append(events, obs.ProcessNameEvent(pid,
			fmt.Sprintf("device: %s (modelled)", r.Kernel)))
		sched := append([]ScheduledGroup(nil), r.Timing.Schedule...)
		sort.Slice(sched, func(a, b int) bool {
			if sched[a].CU != sched[b].CU {
				return sched[a].CU < sched[b].CU
			}
			return sched[a].StartCycle < sched[b].StartCycle
		})
		cus := map[int]bool{}
		for _, sg := range sched {
			if !cus[sg.CU] {
				cus[sg.CU] = true
				events = append(events, obs.ThreadNameEvent(pid, sg.CU,
					fmt.Sprintf("CU %d", sg.CU)))
			}
			events = append(events, obs.TraceEvent{
				Name:     fmt.Sprintf("%s g%d", r.Kernel, sg.Group),
				Category: sg.BoundedBy,
				Phase:    "X",
				TS:       offset + sg.StartCycle*usPerCycle,
				Dur:      sg.GroupCycles * usPerCycle,
				PID:      pid,
				TID:      sg.CU,
				Args: map[string]any{
					"bound":  sg.BoundedBy,
					"cycles": sg.GroupCycles,
					"flops":  r.Groups[sg.Group].Flops,
				},
			})
		}
		offset += r.Timing.Cycles * usPerCycle
	}
	return events
}

// TraceEvents is the method form of the package-level TraceEvents for the
// device's own configuration.
func (d *Device) TraceEvents(basePID int, results ...*Result) []obs.TraceEvent {
	return TraceEvents(d.Config, basePID, results...)
}

// WriteTrace exports the modelled schedule of one or more launches as Chrome
// trace JSON, viewable in chrome://tracing or Perfetto. It is a debugging
// aid for the PTPM analyses (an unbalanced schedule or a memory-bound cliff
// is obvious at a glance). For the merged host+device view, see
// cl.WriteMergedTrace.
func (d *Device) WriteTrace(w io.Writer, results ...*Result) error {
	return obs.WriteChromeTrace(w, map[string]any{
		"device": d.Config.Name,
	}, d.TraceEvents(obs.PIDDeviceBase, results...))
}
