// Package sim couples a force engine to a time integrator and drives the
// simulation loop, tracking the diagnostics (energy, momentum, interaction
// counts) that the examples and conservation tests consume.
package sim

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/bh"
	"repro/internal/body"
	"repro/internal/diag"
	"repro/internal/integrate"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/pp"
	"repro/internal/vec"
)

// Engine computes accelerations for a system. Implementations include the
// CPU direct sum, the CPU treecode, and (via internal/core) the four GPU
// plans.
type Engine interface {
	// Accel fills s.Acc for the current positions and returns the number of
	// interactions evaluated.
	Accel(s *body.System) (interactions int64, err error)
	// Name identifies the engine for reports.
	Name() string
}

// DirectEngine is the CPU particle-particle engine.
type DirectEngine struct {
	Params  pp.Params
	Workers int // goroutines; <= 0 means GOMAXPROCS, 1 forces the scalar loop
}

// Name implements Engine.
func (e *DirectEngine) Name() string { return "cpu-pp" }

// Accel implements Engine.
func (e *DirectEngine) Accel(s *body.System) (int64, error) {
	if e.Workers == 1 {
		return pp.Scalar(s, e.Params), nil
	}
	return pp.Parallel(s, e.Params, e.Workers), nil
}

// TreeEngine is the CPU Barnes-Hut engine. The tree is rebuilt every call
// through a pooled bh.Builder, so steady-state steps reuse the arenas of the
// previous step instead of reallocating them.
type TreeEngine struct {
	Opt     bh.Options
	Workers int // force-evaluation goroutines; <= 0 means GOMAXPROCS

	// builder owns the pooled tree arenas; its Workers field (set via
	// SetHostWorkers) caps the build parallelism independently of the
	// evaluation Workers above.
	builder     bh.Builder
	hostSeconds float64
}

// Name implements Engine.
func (e *TreeEngine) Name() string { return "cpu-bh" }

// Accel implements Engine.
func (e *TreeEngine) Accel(s *body.System) (int64, error) {
	start := time.Now()
	t, err := e.builder.BuildInto(s, e.Opt)
	if err != nil {
		return 0, err
	}
	e.hostSeconds += time.Since(start).Seconds()
	st := t.Accel(e.Workers)
	return st.Interactions, nil
}

// HostBuildTotalSeconds implements HostBuildTimedEngine: accumulated
// wall-clock tree-build time.
func (e *TreeEngine) HostBuildTotalSeconds() float64 { return e.hostSeconds }

// SetHostWorkers implements HostWorkersEngine, capping the tree-build
// parallelism.
func (e *TreeEngine) SetHostWorkers(n int) { e.builder.Workers = n }

// Snapshot records diagnostics at one instant of a run.
type Snapshot struct {
	Step         int
	Time         float64
	Kinetic      float64
	Potential    float64
	Total        float64
	Momentum     vec.D3  // total linear momentum
	VirialRatio  float64 // -K/U; 0.5 is equilibrium
	Interactions int64   // cumulative since the start of the run
	// WallSeconds is the real time spent inside integrator steps since the
	// start of the run (diagnostics excluded).
	WallSeconds float64
	// EngineSeconds is the engine-reported accumulated time — for the GPU
	// plans, the modelled device pipeline time (see core.Engine). Zero when
	// the engine does not report timing.
	EngineSeconds float64
	// EngineExecutedSeconds is the engine's executed (possibly overlapped)
	// timeline; equals EngineSeconds when the engine runs serially and zero
	// when the engine does not track an executed timeline.
	EngineExecutedSeconds float64
	// HostBuildSeconds is the engine's accumulated *measured* host-build
	// wall-clock time (tree + walks + flatten on this machine). Zero when the
	// engine does not measure it.
	HostBuildSeconds float64
	// AllocsPerStep is the mean heap allocations per integrator step since
	// the previous snapshot — the steady-state figure the pooled host
	// pipeline drives towards zero. Zero at step 0.
	AllocsPerStep float64
}

// TimedEngine is optionally implemented by engines that account their own
// accumulated time (core.Engine reports the modelled device pipeline time).
type TimedEngine interface {
	TotalSeconds() float64
}

// BatchEngine is optionally implemented by engines whose force evaluations
// can overlap across steps (core.Engine with pipeline.Overlap). Run hands
// such an engine a window of steps: StartBatch opens the window, FlushBatch
// joins the pipeline — in-flight device work must drain before the host
// reads the full state, as at a snapshot — and returns the window's executed
// seconds on the engine's modelled timeline.
type BatchEngine interface {
	Engine
	StartBatch()
	FlushBatch() float64
}

// Config configures a run.
type Config struct {
	DT    float32 // time step
	Steps int     // number of steps
	// Integrator names the scheme (see integrate.Names) to construct when the
	// caller passes a nil integrator to Run/RunContext; "" means leapfrog.
	// Ignored when an integrator instance is supplied.
	Integrator string
	// Scenario names the initial-condition family the system was generated
	// from ("plummer", "collision", ...). It selects the per-scenario watchdog
	// tolerances when Watchdog is nil (see ScenarioWatchdog); "" or "explicit"
	// leaves the watchdog off.
	Scenario string
	// DTMin, DTMax and Eta configure the Hermite block-timestep hierarchy
	// (integrate.Hermite fields of the same names) when the run uses a Hermite
	// integrator; zero values keep the integrator's own defaults, and the
	// fields are ignored by single-rate integrators.
	DTMin, DTMax float32
	Eta          float32
	// SnapshotEvery records diagnostics every k steps (and always at step 0
	// and the final step). Zero disables intermediate snapshots. Snapshots
	// cost an O(N^2) exact potential evaluation each.
	SnapshotEvery int
	// G and Eps are used only for the energy diagnostics; they should match
	// the engine's parameters.
	G, Eps float64
	// Log, when non-nil, receives a one-line report per snapshot.
	Log io.Writer
	// Obs, when non-nil, receives a span per integrator step, per-step
	// timing metrics (sim.step.ms histogram, sim.steps counter), and
	// per-snapshot conservation gauges (sim.energy_drift,
	// sim.momentum_norm, sim.virial_ratio).
	Obs *obs.Obs
	// Watchdog, when non-nil, checks conservation at every snapshot and
	// aborts the run (returning the snapshots recorded so far alongside the
	// *perf.Violation) once a tolerance is exceeded. Snapshots are the
	// check cadence: set SnapshotEvery to bound how far a broken run can
	// proceed.
	Watchdog *perf.Watchdog
	// HostWorkers, when non-zero and the engine implements
	// HostWorkersEngine, caps the engine's host-side build parallelism
	// (1 = serial; engines default to GOMAXPROCS).
	HostWorkers int
	// PipelineWindow, when > 1 and the engine implements BatchEngine, groups
	// that many consecutive steps into one pipeline window: the engine may
	// overlap evaluations within the window, and Run joins the pipeline at
	// window boundaries and before every snapshot. <= 1 runs every step to
	// completion (serial).
	PipelineWindow int
	// OnSnapshot, when non-nil, receives every snapshot as it is recorded
	// (the job service streams them to HTTP clients this way). A non-nil
	// return aborts the run with that error; the snapshots recorded so far
	// are still returned.
	OnSnapshot func(Snapshot) error
}

// Run advances the system and returns the recorded snapshots. It is
// RunContext under a background context: no deadline, no cancellation, and
// trajectory output identical to the pre-context API.
func Run(s *body.System, eng Engine, integ integrate.Integrator, cfg Config) ([]Snapshot, error) {
	return RunContext(context.Background(), s, eng, integ, cfg) // repocheck:allow ctxpropagate -- Run is the documented context-less compatibility wrapper; the root context is its contract
}

// RunContext advances the system and returns the recorded snapshots,
// honoring ctx between integrator steps: when ctx is cancelled or its
// deadline passes, the run stops before the next step, joins any open
// pipeline window so the engine is reusable, and returns the snapshots
// recorded so far alongside the context's error. Engines that implement
// ContextEngine additionally observe ctx inside each force evaluation.
func RunContext(ctx context.Context, s *body.System, eng Engine, integ integrate.Integrator, cfg Config) ([]Snapshot, error) {
	if cfg.DT <= 0 {
		return nil, fmt.Errorf("sim: non-positive dt %g", cfg.DT)
	}
	if cfg.Steps < 0 {
		return nil, fmt.Errorf("sim: negative step count %d", cfg.Steps)
	}
	if integ == nil {
		name := cfg.Integrator
		if name == "" {
			name = "leapfrog"
		}
		var err error
		integ, err = integrate.New(name)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	if cfg.Watchdog == nil && cfg.Scenario != "" {
		cfg.Watchdog = ScenarioWatchdog(cfg.Scenario)
	}
	caps := Caps(eng)
	if cfg.HostWorkers != 0 && caps.HostWorkers != nil {
		caps.HostWorkers.SetHostWorkers(cfg.HostWorkers)
	}
	var engineErr error
	// forceCtx is swapped per step so a traced run's engine evaluations chain
	// under that step's span; an untraced run keeps ctx as-is.
	forceCtx := ctx
	force := func(sys *body.System) int64 {
		n, err := caps.Accel(forceCtx, eng, sys)
		if err != nil && engineErr == nil {
			engineErr = err
		}
		return n
	}

	// Block-timestep integrators need the extended acceleration+jerk path:
	// wire the richest implementation available — the engine's simulated-GPU
	// jerk kernels with their per-block plan selector when the Jerk capability
	// is present, the CPU reference otherwise. Each block substep records a
	// span under the current step and feeds the active-fraction telemetry.
	if bi, ok := integ.(integrate.BlockIntegrator); ok {
		if h, isHermite := integ.(*integrate.Hermite); isHermite {
			if cfg.Eta > 0 {
				h.Eta = cfg.Eta
			}
			if cfg.DTMin > 0 {
				h.DTMin = cfg.DTMin
			}
			if cfg.DTMax > 0 {
				h.DTMax = cfg.DTMax
			}
		}
		blockParams := pp.Params{G: float32(cfg.G), Eps: float32(cfg.Eps)}
		if blockParams.G == 0 {
			blockParams.G = 1
		}
		bi.SetBlockForce(func(sys *body.System, active []int, jerk []vec.V3) int64 {
			sp := cfg.Obs.StartCtx(forceCtx, "block", "sim").Track(integ.Name()).Arg("active", len(active))
			defer sp.End()
			var n int64
			if caps.Jerk != nil {
				var err error
				n, err = caps.Jerk.AccelJerk(forceCtx, sys, active, jerk)
				if err != nil && engineErr == nil {
					engineErr = err
				}
			} else {
				n = pp.ScalarJerk(sys, active, jerk, blockParams)
			}
			if nb := sys.N(); nb > 0 {
				cfg.Obs.Gauge("sim.block.active_fraction").Set(float64(len(active)) / float64(nb))
			}
			cfg.Obs.Counter("sim.block.substeps").Inc()
			return n
		})
	}

	timed := caps.Timed
	batch := caps.Batch
	useBatch := batch != nil && cfg.PipelineWindow > 1

	var snaps []Snapshot
	var cumInteractions int64
	var wallSeconds float64
	var e0 float64
	var p0 vec.D3
	// Allocation accounting: snapshots report the mean mallocs per step of
	// the preceding inter-snapshot interval. Read before the snapshot's own
	// O(N^2) diagnostics so those don't pollute the per-step figure.
	var memStats runtime.MemStats
	runtime.ReadMemStats(&memStats)
	lastMallocs := memStats.Mallocs
	lastSnapStep := 0
	record := func(step int) error {
		runtime.ReadMemStats(&memStats)
		var allocsPerStep float64
		if steps := step - lastSnapStep; steps > 0 {
			allocsPerStep = float64(memStats.Mallocs-lastMallocs) / float64(steps)
		}
		lastSnapStep = step
		k := s.KineticEnergy()
		p := s.PotentialEnergy(cfg.G, cfg.Eps)
		sn := Snapshot{
			Step:         step,
			Time:         float64(step) * float64(cfg.DT),
			Kinetic:      k,
			Potential:    p,
			Total:        k + p,
			Momentum:     s.Momentum(),
			VirialRatio:  diag.VirialFromEnergies(k, p),
			Interactions: cumInteractions,
			WallSeconds:  wallSeconds,
		}
		sn.AllocsPerStep = allocsPerStep
		if timed != nil {
			sn.EngineSeconds = timed.TotalSeconds()
		}
		if caps.Executed != nil {
			sn.EngineExecutedSeconds = caps.Executed.ExecutedSeconds()
		}
		if caps.HostBuildTimed != nil {
			sn.HostBuildSeconds = caps.HostBuildTimed.HostBuildTotalSeconds()
		}
		if len(snaps) == 0 {
			e0 = sn.Total
			p0 = sn.Momentum
		}
		den := e0
		if den < 0 {
			den = -den
		}
		if den == 0 {
			den = 1
		}
		drift := sn.Total - e0
		if drift < 0 {
			drift = -drift
		}
		cfg.Obs.Gauge("sim.energy_drift").Set(drift / den)
		cfg.Obs.Gauge("sim.momentum_norm").Set(sn.Momentum.Sub(p0).Norm())
		cfg.Obs.Gauge("sim.virial_ratio").Set(sn.VirialRatio)
		cfg.Obs.Gauge("sim.host_build.seconds").Set(sn.HostBuildSeconds)
		cfg.Obs.Gauge("sim.allocs_per_step").Set(sn.AllocsPerStep)
		snaps = append(snaps, sn)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "step %6d  t=%8.4f  E=%+.6f  K=%.6f  U=%+.6f  interactions=%d  wall=%.3fs  engine=%.4fs\n",
				sn.Step, sn.Time, sn.Total, sn.Kinetic, sn.Potential, sn.Interactions, sn.WallSeconds, sn.EngineSeconds)
		}
		if err := cfg.Watchdog.Check(step, k, p, sn.Momentum); err != nil {
			return fmt.Errorf("sim: %s halted: %w", eng.Name(), err)
		}
		if cfg.OnSnapshot != nil {
			if err := cfg.OnSnapshot(sn); err != nil {
				return fmt.Errorf("sim: snapshot sink at step %d: %w", step, err)
			}
		}
		// Re-read after the snapshot's own diagnostics so their allocations
		// don't count against the next interval's per-step figure.
		runtime.ReadMemStats(&memStats)
		lastMallocs = memStats.Mallocs
		return nil
	}

	if err := record(0); err != nil {
		return snaps, err
	}
	windowOpen := false
	windowSteps := 0
	for step := 1; step <= cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			// Join the pipeline before bailing so the engine's executed
			// timeline is consistent and the engine can be handed the next
			// job (the serve pool relies on this).
			if windowOpen {
				batch.FlushBatch()
			}
			return snaps, fmt.Errorf("sim: %s cancelled before step %d: %w", eng.Name(), step, err)
		}
		if useBatch && !windowOpen {
			batch.StartBatch()
			windowOpen = true
			windowSteps = 0
		}
		// StartCtx chains the step under whatever trace position the caller
		// put in ctx (the serve layer's attempt span); a bare Run records the
		// same unstamped span as before.
		sp := cfg.Obs.StartCtx(ctx, "step", "sim").Track(eng.Name()).Arg("step", step)
		forceCtx = obs.WithTraceContext(ctx, sp.TraceContext())
		begin := time.Now()
		cumInteractions += integ.Step(s, cfg.DT, force)
		stepSeconds := time.Since(begin).Seconds()
		sp.End()
		wallSeconds += stepSeconds
		cfg.Obs.Counter("sim.steps").Inc()
		cfg.Obs.Histogram("sim.step.ms", obs.DefaultMillisBuckets).Observe(stepSeconds * 1e3)
		if engineErr != nil {
			return snaps, fmt.Errorf("sim: engine %s failed at step %d: %w", eng.Name(), step, engineErr)
		}
		windowSteps++
		takeSnap := (cfg.SnapshotEvery > 0 && step%cfg.SnapshotEvery == 0) || step == cfg.Steps
		// A snapshot reads the whole state on the host, so it is a pipeline
		// barrier: join before recording, exactly like a window boundary.
		if windowOpen && (windowSteps >= cfg.PipelineWindow || takeSnap) {
			batch.FlushBatch()
			windowOpen = false
		}
		if takeSnap {
			if err := record(step); err != nil {
				return snaps, err
			}
		}
	}
	return snaps, nil
}

// EnergyDrift returns the maximum relative deviation |E(t)-E(0)| / |E(0)|
// across the snapshots — the conservation metric used by tests.
func EnergyDrift(snaps []Snapshot) float64 {
	if len(snaps) == 0 {
		return 0
	}
	e0 := snaps[0].Total
	den := e0
	if den < 0 {
		den = -den
	}
	if den == 0 {
		den = 1
	}
	var worst float64
	for _, sn := range snaps {
		d := sn.Total - e0
		if d < 0 {
			d = -d
		}
		if r := d / den; r > worst {
			worst = r
		}
	}
	return worst
}
