package sim

import (
	"context"
	"strings"

	"repro/internal/body"
	"repro/internal/obs"
	"repro/internal/vec"
)

// ContextEngine is optionally implemented by engines whose force evaluation
// can observe a context (core.Engine). RunContext prefers AccelContext over
// Accel so cancellation and deadlines propagate into the evaluation itself
// rather than only being checked between steps.
type ContextEngine interface {
	Engine
	AccelContext(ctx context.Context, s *body.System) (interactions int64, err error)
}

// ExecutedEngine is optionally implemented by engines that track an executed
// (possibly overlapped) timeline separate from their serial totals
// (core.Engine under pipeline.Overlap).
type ExecutedEngine interface {
	ExecutedSeconds() float64
}

// HostBuildTimedEngine is optionally implemented by engines that measure the
// wall-clock cost of their host-side build stage (tree + walks + flatten on
// the real machine, as opposed to the modelled pipeline time TimedEngine
// reports). Snapshots surface it as HostBuildSeconds.
type HostBuildTimedEngine interface {
	HostBuildTotalSeconds() float64
}

// HostWorkersEngine is optionally implemented by engines whose host-side
// build parallelism can be capped (0 = GOMAXPROCS, 1 = serial). RunContext
// applies Config.HostWorkers through it.
type HostWorkersEngine interface {
	SetHostWorkers(n int)
}

// JerkEngine is optionally implemented by engines that can evaluate
// active-subset acceleration+jerk — the extended force path the Hermite
// block-timestep integrator needs (integrate.BlockForceFunc). SupportsJerk
// lets an engine type implement the interface while declining the capability
// for configurations without a jerk path (core.Engine over a treecode plan);
// Caps records the capability only when it returns true, and RunContext falls
// back to the CPU reference pp.ScalarJerk otherwise.
type JerkEngine interface {
	SupportsJerk() bool
	AccelJerk(ctx context.Context, s *body.System, active []int, jerk []vec.V3) (int64, error)
}

// EngineCaps is the single probe for every optional capability an Engine may
// implement on top of the required Accel/Name pair. Run, RunContext and the
// job service (internal/serve) all discover capabilities through Caps rather
// than scattering their own type assertions; a field is nil when the engine
// does not implement the corresponding interface.
//
// The optional interfaces are deliberately independent: an engine may
// implement any subset, and everything in this module degrades gracefully —
// no timing in snapshots without Timed, no cross-step overlap without Batch,
// cancellation checked only between steps without Context.
type EngineCaps struct {
	// Timed reports accumulated engine time (Snapshot.EngineSeconds).
	Timed TimedEngine
	// Batch supports windowed cross-step pipelining (Config.PipelineWindow).
	Batch BatchEngine
	// Context supports in-evaluation cancellation (RunContext).
	Context ContextEngine
	// Executed reports the overlapped timeline (Snapshot.EngineExecutedSeconds).
	Executed ExecutedEngine
	// Observable accepts a telemetry bundle after construction.
	Observable obs.Observable
	// HostBuildTimed reports measured host-build time (Snapshot.HostBuildSeconds).
	HostBuildTimed HostBuildTimedEngine
	// HostWorkers accepts a host-build parallelism cap (Config.HostWorkers).
	HostWorkers HostWorkersEngine
	// Jerk evaluates active-subset acceleration+jerk for the Hermite
	// block-timestep path; nil when the engine declines SupportsJerk.
	Jerk JerkEngine
}

// Caps probes eng for every optional capability.
func Caps(eng Engine) EngineCaps {
	var c EngineCaps
	c.Timed, _ = eng.(TimedEngine)
	c.Batch, _ = eng.(BatchEngine)
	c.Context, _ = eng.(ContextEngine)
	c.Executed, _ = eng.(ExecutedEngine)
	c.Observable, _ = eng.(obs.Observable)
	c.HostBuildTimed, _ = eng.(HostBuildTimedEngine)
	c.HostWorkers, _ = eng.(HostWorkersEngine)
	if j, ok := eng.(JerkEngine); ok && j.SupportsJerk() {
		c.Jerk = j
	}
	return c
}

// Accel evaluates forces through the richest implemented path: AccelContext
// when the engine is context-aware, plain Accel otherwise.
func (c EngineCaps) Accel(ctx context.Context, eng Engine, s *body.System) (int64, error) {
	if c.Context != nil {
		return c.Context.AccelContext(ctx, s)
	}
	return eng.Accel(s)
}

// Observe forwards a telemetry bundle when the engine accepts one.
func (c EngineCaps) Observe(o *obs.Obs) {
	if c.Observable != nil {
		c.Observable.SetObs(o)
	}
}

// String lists the implemented capabilities ("timed,batch,context,executed,
// observable,hostbuild,hostworkers" for core.Engine; "" for a bare Engine) —
// used by reports and the job service's status output.
func (c EngineCaps) String() string {
	var parts []string
	if c.Timed != nil {
		parts = append(parts, "timed")
	}
	if c.Batch != nil {
		parts = append(parts, "batch")
	}
	if c.Context != nil {
		parts = append(parts, "context")
	}
	if c.Executed != nil {
		parts = append(parts, "executed")
	}
	if c.Observable != nil {
		parts = append(parts, "observable")
	}
	if c.HostBuildTimed != nil {
		parts = append(parts, "hostbuild")
	}
	if c.HostWorkers != nil {
		parts = append(parts, "hostworkers")
	}
	if c.Jerk != nil {
		parts = append(parts, "jerk")
	}
	return strings.Join(parts, ",")
}
