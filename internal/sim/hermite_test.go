package sim

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/ic"
	"repro/internal/integrate"
	"repro/internal/obs"
	"repro/internal/pp"
)

// TestRunHermiteGPUJerkPath drives the full Hermite block-timestep stack:
// RunContext wires the engine's jerk capability into the integrator, the jerk
// unit re-selects its execution plan per block as the active set shrinks, and
// the scenario watchdog (armed from Config.Scenario) passes on a Plummer
// sphere.
func TestRunHermiteGPUJerkPath(t *testing.T) {
	clCtx, err := cl.NewContext(gpusim.TestDevice())
	if err != nil {
		t.Fatal(err)
	}
	params := pp.Params{G: 1, Eps: 0.05}
	eng := core.NewEngine(core.NewIParallel(clCtx, params))
	caps := Caps(eng)
	if !strings.Contains(caps.String(), "jerk") {
		t.Fatalf("PP core engine caps %q lack jerk", caps)
	}

	o := obs.New()
	eng.SetObs(o)
	// 256 bodies: a full block fills the 2-CU test device (i-parallel), while
	// shrunken blocks fall below the occupancy threshold (j-parallel).
	s := ic.Plummer(256, 4)
	cfg := Config{
		DT:            1.0 / 16,
		Steps:         2,
		SnapshotEvery: 1,
		G:             1, Eps: 0.05,
		Scenario: "plummer",
		Obs:      o,
	}
	snaps, err := RunContext(context.Background(), s, eng, &integrate.Hermite{}, cfg)
	if err != nil {
		t.Fatalf("hermite run: %v", err)
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	if drift := EnergyDrift(snaps); drift > 1e-2 {
		t.Errorf("energy drift %.3g exceeds plummer watchdog band", drift)
	}
	if got := o.Counter("sim.block.substeps").Value(); got <= int64(cfg.Steps) {
		t.Errorf("block substeps = %d, want > %d (block levels unused?)", got, cfg.Steps)
	}
	iSel := o.Counter("core.jerk.plan.i-parallel").Value()
	jSel := o.Counter("core.jerk.plan.j-parallel").Value()
	if iSel == 0 || jSel == 0 {
		t.Errorf("plan selector never switched: i-parallel=%d j-parallel=%d", iSel, jSel)
	}
	if f := o.Gauge("sim.block.active_fraction").Value(); f <= 0 || f > 1 {
		t.Errorf("active fraction gauge %g out of range", f)
	}
}

// TestRunHermiteCPUFallbackMatchesWatchdog runs Hermite on an engine without
// the jerk capability: RunContext must fall back to the CPU reference jerk and
// the collision scenario watchdog must hold.
func TestRunHermiteCPUFallbackMatchesWatchdog(t *testing.T) {
	s := ic.Collision(64, 4.0, 0.5, 6)
	eng := &DirectEngine{Params: pp.Params{G: 1, Eps: 0.05}}
	cfg := Config{
		DT:            1.0 / 32,
		Steps:         8,
		SnapshotEvery: 4,
		G:             1, Eps: 0.05,
		Scenario:   "collision",
		Integrator: "hermite",
	}
	snaps, err := RunContext(context.Background(), s, eng, nil, cfg)
	if err != nil {
		t.Fatalf("hermite fallback run: %v", err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
}

// TestRunNilIntegratorFromConfig pins the Config.Integrator path: a nil
// integrator resolves through integrate.New, and an unknown name fails with
// the canonical-name list.
func TestRunNilIntegratorFromConfig(t *testing.T) {
	s := ic.Plummer(16, 1)
	eng := &DirectEngine{Params: pp.DefaultParams()}
	if _, err := Run(s, eng, nil, Config{DT: 0.01, Steps: 1}); err != nil {
		t.Fatalf("default (leapfrog) run: %v", err)
	}
	_, err := Run(s.Clone(), eng, nil, Config{DT: 0.01, Steps: 1, Integrator: "rk4"})
	if err == nil || !strings.Contains(err.Error(), "hermite") {
		t.Fatalf("unknown integrator error %v does not list canonical names", err)
	}
}

// TestScenarioWatchdogPresets pins the preset table and that Config.Scenario
// actually arms the watchdog: a deliberately unstable run on a plummer
// scenario must be halted by the installed tolerances.
func TestScenarioWatchdogPresets(t *testing.T) {
	for _, name := range ScenarioNames() {
		if _, ok := ScenarioTolerances(name); !ok {
			t.Errorf("scenario %q has no tolerance preset", name)
		}
		if ScenarioWatchdog(name) == nil {
			t.Errorf("scenario %q has no watchdog", name)
		}
	}
	if ScenarioWatchdog("explicit") != nil {
		t.Error("explicit bodies must not get a watchdog preset")
	}
	if ScenarioWatchdog("warp-core-breach") != nil {
		t.Error("unknown scenario got a watchdog")
	}

	s := ic.Plummer(32, 2)
	eng := &DirectEngine{Params: pp.Params{G: 1, Eps: 0.05}}
	_, err := Run(s, eng, &integrate.Euler{}, Config{
		DT: 0.5, Steps: 64, SnapshotEvery: 4,
		G: 1, Eps: 0.05,
		Scenario: "plummer",
	})
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("unstable plummer run not halted by scenario watchdog: %v", err)
	}
}
