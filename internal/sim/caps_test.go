package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bh"
	"repro/internal/body"
	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/ic"
	"repro/internal/integrate"
	"repro/internal/obs"
	"repro/internal/pp"
)

// bareEngine implements nothing beyond the required Engine pair.
type bareEngine struct{}

func (bareEngine) Name() string { return "bare" }
func (bareEngine) Accel(s *body.System) (int64, error) {
	s.ZeroAcc()
	return int64(s.N()), nil
}

// batchOnlyEngine implements BatchEngine but nothing else; it counts window
// open/close pairs so tests can assert Run leaves no window dangling.
type batchOnlyEngine struct {
	bareEngine
	starts, flushes int
}

func (e *batchOnlyEngine) StartBatch()         { e.starts++ }
func (e *batchOnlyEngine) FlushBatch() float64 { e.flushes++; return 0 }

// ctxEngine records the context it was handed and fails after a set number
// of evaluations when its context is cancelled.
type ctxEngine struct {
	bareEngine
	got   context.Context
	calls int
}

func (e *ctxEngine) AccelContext(ctx context.Context, s *body.System) (int64, error) {
	e.got = ctx
	e.calls++
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.ZeroAcc()
	return int64(s.N()), nil
}

func TestCapsPartialImplementations(t *testing.T) {
	cases := []struct {
		name                                         string
		eng                                          Engine
		timed, batch, ctxAware, executed, observable bool
		caps                                         string
	}{
		{"bare", bareEngine{}, false, false, false, false, false, ""},
		{"timed-only", &timedTestEngine{}, true, false, false, false, false, "timed"},
		{"batch-only", &batchOnlyEngine{}, false, true, false, false, false, "batch"},
		{"context-only", &ctxEngine{}, false, false, true, false, false, "context"},
		{"cpu-pp", &DirectEngine{Params: pp.DefaultParams()}, false, false, false, false, false, ""},
	}
	for _, tc := range cases {
		c := Caps(tc.eng)
		if (c.Timed != nil) != tc.timed || (c.Batch != nil) != tc.batch ||
			(c.Context != nil) != tc.ctxAware || (c.Executed != nil) != tc.executed ||
			(c.Observable != nil) != tc.observable {
			t.Errorf("%s: caps = %q (timed=%v batch=%v context=%v executed=%v observable=%v)",
				tc.name, c, c.Timed != nil, c.Batch != nil, c.Context != nil, c.Executed != nil, c.Observable != nil)
		}
		if c.String() != tc.caps {
			t.Errorf("%s: String() = %q, want %q", tc.name, c, tc.caps)
		}
		// Observe must be a no-op, not a panic, for partial implementations.
		c.Observe(obs.New())
	}
}

func TestCapsGPUEngineImplementsEverything(t *testing.T) {
	clCtx, err := cl.NewContext(gpusim.TestDevice())
	if err != nil {
		t.Fatal(err)
	}
	c := Caps(core.NewEngine(core.NewJWParallel(clCtx, bh.DefaultOptions())))
	if want := "timed,batch,context,executed,observable,hostbuild,hostworkers"; c.String() != want {
		t.Errorf("core.Engine caps = %q, want %q", c, want)
	}
}

func TestRunContextHonorsDeadline(t *testing.T) {
	s := ic.Plummer(16, 1)
	// An engine slow enough that a 30ms deadline lands mid-run.
	slow := &slowEngine{delay: 5 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	snaps, err := RunContext(ctx, s, slow, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 10000, SnapshotEvery: 1, G: 1, Eps: 0.05,
	})
	if err == nil {
		t.Fatal("deadline shorter than the run did not stop it")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if len(snaps) == 0 {
		t.Error("no snapshots recorded before the deadline")
	}
	if len(snaps) > 10000 {
		t.Error("run completed despite the deadline")
	}
}

type slowEngine struct {
	bareEngine
	delay time.Duration
}

func (e *slowEngine) Accel(s *body.System) (int64, error) {
	time.Sleep(e.delay)
	s.ZeroAcc()
	return int64(s.N()), nil
}

func TestRunContextCancelledUpFront(t *testing.T) {
	s := ic.Plummer(16, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	snaps, err := RunContext(ctx, s, bareEngine{}, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 5, G: 1, Eps: 0.05,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The step-0 snapshot precedes the first cancellation check.
	if len(snaps) != 1 {
		t.Errorf("got %d snapshots, want the step-0 record only", len(snaps))
	}
}

// cancellingBatchEngine cancels its context partway into a pipeline window,
// so RunContext's next between-steps check fires while the window is open.
type cancellingBatchEngine struct {
	batchOnlyEngine
	cancel context.CancelFunc
	calls  int
}

func (e *cancellingBatchEngine) Accel(s *body.System) (int64, error) {
	e.calls++
	if e.calls == 3 {
		e.cancel()
	}
	s.ZeroAcc()
	return int64(s.N()), nil
}

func TestRunContextClosesOpenWindowOnCancel(t *testing.T) {
	s := ic.Plummer(16, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := &cancellingBatchEngine{cancel: cancel}
	_, err := RunContext(ctx, s, eng, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 100, G: 1, Eps: 0.05, PipelineWindow: 50,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if eng.starts == 0 || eng.starts != eng.flushes {
		t.Errorf("window open/close mismatch after cancel: %d starts, %d flushes", eng.starts, eng.flushes)
	}
}

func TestRunContextThreadsContextIntoEngine(t *testing.T) {
	s := ic.Plummer(16, 1)
	eng := &ctxEngine{}
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "threaded")
	if _, err := RunContext(ctx, s, eng, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 2, G: 1, Eps: 0.05,
	}); err != nil {
		t.Fatal(err)
	}
	if eng.calls == 0 || eng.got == nil || eng.got.Value(key{}) != "threaded" {
		t.Errorf("engine saw %d calls, ctx value %v; want the run's context", eng.calls, eng.got)
	}
}

// TestRunMatchesRunContext pins the compatibility contract: Run is exactly
// RunContext under a background context, so trajectories and snapshots are
// identical between the old and new entry points.
func TestRunMatchesRunContext(t *testing.T) {
	cfg := Config{DT: 0.01, Steps: 12, SnapshotEvery: 3, G: 1, Eps: 0.05}
	oldSys := ic.Plummer(128, 9)
	oldSnaps, err := Run(oldSys, &DirectEngine{Params: pp.DefaultParams()}, &integrate.Leapfrog{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	newSys := ic.Plummer(128, 9)
	newSnaps, err := RunContext(context.Background(), newSys, &DirectEngine{Params: pp.DefaultParams()}, &integrate.Leapfrog{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oldSys.Pos {
		if oldSys.Pos[i] != newSys.Pos[i] || oldSys.Vel[i] != newSys.Vel[i] {
			t.Fatalf("body %d diverged between Run and RunContext", i)
		}
	}
	if len(oldSnaps) != len(newSnaps) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(oldSnaps), len(newSnaps))
	}
	for i := range oldSnaps {
		if oldSnaps[i].Total != newSnaps[i].Total || oldSnaps[i].Step != newSnaps[i].Step {
			t.Errorf("snapshot %d differs: %+v vs %+v", i, oldSnaps[i], newSnaps[i])
		}
	}
}

func TestOnSnapshotStreamsEveryRecord(t *testing.T) {
	s := ic.Plummer(32, 2)
	var streamed []Snapshot
	snaps, err := Run(s, &DirectEngine{Params: pp.DefaultParams()}, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 6, SnapshotEvery: 2, G: 1, Eps: 0.05,
		OnSnapshot: func(sn Snapshot) error { streamed = append(streamed, sn); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(snaps) {
		t.Fatalf("streamed %d snapshots, recorded %d", len(streamed), len(snaps))
	}
	for i := range snaps {
		if streamed[i] != snaps[i] {
			t.Errorf("streamed snapshot %d differs from recorded", i)
		}
	}
}

func TestOnSnapshotErrorAbortsRun(t *testing.T) {
	s := ic.Plummer(32, 2)
	sinkErr := errors.New("sink full")
	snaps, err := Run(s, &DirectEngine{Params: pp.DefaultParams()}, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 10, SnapshotEvery: 1, G: 1, Eps: 0.05,
		OnSnapshot: func(sn Snapshot) error {
			if sn.Step >= 2 {
				return sinkErr
			}
			return nil
		},
	})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want the sink error", err)
	}
	if len(snaps) > 3 {
		t.Errorf("run continued past the failing sink: %d snapshots", len(snaps))
	}
}
