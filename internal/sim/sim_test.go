package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/bh"
	"repro/internal/body"
	"repro/internal/cl"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/ic"
	"repro/internal/integrate"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/pp"
)

func TestRunDirectEngine(t *testing.T) {
	s := ic.Plummer(128, 1)
	eng := &DirectEngine{Params: pp.DefaultParams()}
	snaps, err := Run(s, eng, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 20, SnapshotEvery: 5, G: 1, Eps: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshots: step 0, 5, 10, 15, 20.
	if len(snaps) != 5 {
		t.Fatalf("got %d snapshots, want 5", len(snaps))
	}
	if snaps[0].Step != 0 || snaps[4].Step != 20 {
		t.Errorf("snapshot steps: first %d last %d", snaps[0].Step, snaps[4].Step)
	}
	if d := snaps[4].Time - 0.2; d > 1e-6 || d < -1e-6 {
		t.Errorf("final time %g, want 0.2", snaps[4].Time)
	}
	if snaps[4].Interactions != 21*128*128 { // priming + 20 steps
		t.Errorf("interactions %d, want %d", snaps[4].Interactions, 21*128*128)
	}
	if drift := EnergyDrift(snaps); drift > 1e-2 {
		t.Errorf("energy drift %g", drift)
	}
}

func TestRunTreeEngine(t *testing.T) {
	s := ic.Plummer(256, 2)
	eng := &TreeEngine{Opt: bh.DefaultOptions()}
	snaps, err := Run(s, eng, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 10, G: 1, Eps: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if drift := EnergyDrift(snaps); drift > 1e-2 {
		t.Errorf("energy drift %g", drift)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	s := ic.Plummer(8, 1)
	eng := &DirectEngine{Params: pp.DefaultParams()}
	if _, err := Run(s, eng, &integrate.Leapfrog{}, Config{DT: 0, Steps: 1}); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := Run(s, eng, &integrate.Leapfrog{}, Config{DT: 0.01, Steps: -1}); err == nil {
		t.Error("negative steps accepted")
	}
}

type failingEngine struct{ after int }

func (e *failingEngine) Name() string { return "failing" }
func (e *failingEngine) Accel(s *body.System) (int64, error) {
	e.after--
	if e.after < 0 {
		return 0, errors.New("synthetic failure")
	}
	s.ZeroAcc()
	return 1, nil
}

func TestRunPropagatesEngineError(t *testing.T) {
	s := ic.Plummer(8, 1)
	_, err := Run(s, &failingEngine{after: 3}, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 10, G: 1, Eps: 0.05,
	})
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("err = %v, want synthetic failure", err)
	}
}

func TestRunLogsSnapshots(t *testing.T) {
	s := ic.Plummer(16, 3)
	var buf bytes.Buffer
	_, err := Run(s, &DirectEngine{Params: pp.DefaultParams()}, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 2, SnapshotEvery: 1, G: 1, Eps: 0.05, Log: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 3 { // steps 0, 1, 2
		t.Errorf("logged %d lines, want 3:\n%s", lines, buf.String())
	}
	if !strings.Contains(buf.String(), "E=") {
		t.Error("log lines lack energy")
	}
}

// timedTestEngine reports a fixed amount of accumulated time per Accel call.
type timedTestEngine struct {
	calls int
}

func (e *timedTestEngine) Name() string { return "timed" }
func (e *timedTestEngine) Accel(s *body.System) (int64, error) {
	e.calls++
	s.ZeroAcc()
	return int64(s.N()), nil
}
func (e *timedTestEngine) TotalSeconds() float64 { return 0.25 * float64(e.calls) }

func TestRunRecordsTiming(t *testing.T) {
	s := ic.Plummer(16, 5)
	o := obs.New()
	var buf bytes.Buffer
	eng := &timedTestEngine{}
	snaps, err := Run(s, eng, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 4, SnapshotEvery: 2, G: 1, Eps: 0.05, Log: &buf, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := snaps[len(snaps)-1]
	if last.WallSeconds <= 0 {
		t.Errorf("final WallSeconds = %g, want > 0", last.WallSeconds)
	}
	// Priming call + one per step: 5 calls by the final snapshot.
	if want := 0.25 * 5; last.EngineSeconds != want {
		t.Errorf("final EngineSeconds = %g, want %g", last.EngineSeconds, want)
	}
	if snaps[0].WallSeconds != 0 || snaps[0].EngineSeconds != 0 {
		t.Errorf("step-0 snapshot timing: wall=%g engine=%g", snaps[0].WallSeconds, snaps[0].EngineSeconds)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].WallSeconds < snaps[i-1].WallSeconds {
			t.Errorf("WallSeconds not monotone: %g after %g", snaps[i].WallSeconds, snaps[i-1].WallSeconds)
		}
	}
	if !strings.Contains(buf.String(), "wall=") || !strings.Contains(buf.String(), "engine=") {
		t.Errorf("log lines lack timing:\n%s", buf.String())
	}

	snap := o.Metrics.Snapshot()
	if got := snap.Counters["sim.steps"]; got != 4 {
		t.Errorf("sim.steps counter = %d, want 4", got)
	}
	h, ok := snap.Histograms["sim.step.ms"]
	if !ok || h.Count != 4 {
		t.Errorf("sim.step.ms histogram = %+v, want 4 observations", h)
	}
	var stepSpans int
	for _, sp := range o.Trace.Spans() {
		if sp.Name == "step" && sp.Category == "sim" {
			stepSpans++
		}
	}
	if stepSpans != 4 {
		t.Errorf("got %d step spans, want 4", stepSpans)
	}
}

func TestRunZeroSteps(t *testing.T) {
	s := ic.Plummer(8, 1)
	snaps, err := Run(s, &DirectEngine{Params: pp.DefaultParams()}, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 0, G: 1, Eps: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Step != 0 {
		t.Errorf("zero-step run snapshots: %+v", snaps)
	}
}

func TestEnergyDrift(t *testing.T) {
	if EnergyDrift(nil) != 0 {
		t.Error("empty drift not zero")
	}
	snaps := []Snapshot{{Total: -2}, {Total: -2.1}, {Total: -1.95}}
	if d := EnergyDrift(snaps); d < 0.049 || d > 0.051 {
		t.Errorf("drift = %g, want 0.05", d)
	}
	zero := []Snapshot{{Total: 0}, {Total: 0.5}}
	if d := EnergyDrift(zero); d != 0.5 {
		t.Errorf("zero-baseline drift = %g", d)
	}
}

func TestDirectEngineWorkerModes(t *testing.T) {
	s := ic.Plummer(64, 4)
	scalar := &DirectEngine{Params: pp.DefaultParams(), Workers: 1}
	n, err := scalar.Accel(s.Clone())
	if err != nil || n != 64*64 {
		t.Fatalf("scalar: n=%d err=%v", n, err)
	}
	par := &DirectEngine{Params: pp.DefaultParams()}
	n, err = par.Accel(s.Clone())
	if err != nil || n != 64*64 {
		t.Fatalf("parallel: n=%d err=%v", n, err)
	}
	if scalar.Name() != "cpu-pp" {
		t.Errorf("Name = %q", scalar.Name())
	}
}

func TestTreeEngineName(t *testing.T) {
	eng := &TreeEngine{Opt: bh.DefaultOptions()}
	if eng.Name() != "cpu-bh" {
		t.Errorf("Name = %q", eng.Name())
	}
	if _, err := eng.Accel(body.NewSystem(0)); err == nil {
		t.Error("empty system accepted by tree engine")
	}
}

func TestRunRecordsConservationGauges(t *testing.T) {
	s := ic.Plummer(64, 3)
	o := obs.New()
	snaps, err := Run(s, &DirectEngine{Params: pp.DefaultParams()}, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 4, SnapshotEvery: 2, G: 1, Eps: 0.05, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := snaps[len(snaps)-1]
	wantDrift := last.Total - snaps[0].Total
	if wantDrift < 0 {
		wantDrift = -wantDrift
	}
	wantDrift /= -snaps[0].Total // bound system: E0 < 0
	if got := o.Gauge("sim.energy_drift").Value(); got != wantDrift {
		t.Errorf("sim.energy_drift gauge = %g, want %g", got, wantDrift)
	}
	wantMom := last.Momentum.Sub(snaps[0].Momentum).Norm()
	if got := o.Gauge("sim.momentum_norm").Value(); got != wantMom {
		t.Errorf("sim.momentum_norm gauge = %g, want %g", got, wantMom)
	}
	if got := o.Gauge("sim.virial_ratio").Value(); got != last.VirialRatio {
		t.Errorf("sim.virial_ratio gauge = %g, want %g", got, last.VirialRatio)
	}
	// A bound Plummer sphere sits near virial equilibrium.
	if last.VirialRatio < 0.2 || last.VirialRatio > 0.8 {
		t.Errorf("virial ratio %g far from equilibrium", last.VirialRatio)
	}
}

func TestRunWatchdogHaltsBrokenRun(t *testing.T) {
	s := ic.Plummer(32, 5)
	// An absurdly large timestep destroys energy conservation within a few
	// steps; the watchdog must halt the run and surface a *perf.Violation.
	w := &perf.Watchdog{Tol: perf.Tolerances{MaxEnergyDrift: 1e-4}}
	snaps, err := Run(s, &DirectEngine{Params: pp.DefaultParams()}, &integrate.Leapfrog{}, Config{
		DT: 5, Steps: 50, SnapshotEvery: 1, G: 1, Eps: 0.05, Watchdog: w,
	})
	if err == nil {
		t.Fatal("watchdog did not halt a dt=5 run within 50 steps")
	}
	var v *perf.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v is not a *perf.Violation", err)
	}
	if len(snaps) == 0 || len(snaps) > 51 {
		t.Errorf("got %d snapshots with the halt", len(snaps))
	}
	if !strings.Contains(err.Error(), "halted") {
		t.Errorf("err = %q", err)
	}
}

func TestRunWatchdogPassesHealthyRun(t *testing.T) {
	s := ic.Plummer(64, 6)
	w := &perf.Watchdog{Tol: perf.DefaultTolerances()}
	if _, err := Run(s, &DirectEngine{Params: pp.DefaultParams()}, &integrate.Leapfrog{}, Config{
		DT: 0.01, Steps: 10, SnapshotEvery: 5, G: 1, Eps: 0.05, Watchdog: w,
	}); err != nil {
		t.Fatalf("healthy run halted: %v", err)
	}
}

// TestRunPipelineWindow drives a GPU-plan engine through Run in overlap mode
// with a window of steps: trajectories are bitwise-identical to the serial
// run (the overlap is timeline accounting, not reordered physics), while the
// executed engine timeline comes out shorter than the serial one.
func TestRunPipelineWindow(t *testing.T) {
	ctx, err := cl.NewContext(gpusim.HD5850())
	if err != nil {
		t.Fatal(err)
	}
	newEng := func(mode pipeline.Mode) *core.Engine {
		eng := core.NewEngine(core.NewJWParallel(ctx, bh.DefaultOptions()))
		eng.Mode = mode
		return eng
	}
	cfg := Config{DT: 0.01, Steps: 8, SnapshotEvery: 4, G: 1, Eps: 0.05}

	serialSys := ic.Plummer(1024, 11)
	serialEng := newEng(pipeline.Serial)
	serialSnaps, err := Run(serialSys, serialEng, &integrate.Leapfrog{}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	overlapSys := ic.Plummer(1024, 11)
	overlapEng := newEng(pipeline.Overlap)
	cfg.PipelineWindow = 4
	overlapSnaps, err := Run(overlapSys, overlapEng, &integrate.Leapfrog{}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := range serialSys.Pos {
		if serialSys.Pos[i] != overlapSys.Pos[i] || serialSys.Vel[i] != overlapSys.Vel[i] {
			t.Fatalf("body %d diverged between serial and overlap runs", i)
		}
	}
	last := overlapSnaps[len(overlapSnaps)-1]
	if last.EngineExecutedSeconds <= 0 || last.EngineExecutedSeconds >= last.EngineSeconds {
		t.Errorf("overlap executed %g not below serial-basis %g",
			last.EngineExecutedSeconds, last.EngineSeconds)
	}
	sLast := serialSnaps[len(serialSnaps)-1]
	if d := sLast.EngineExecutedSeconds - sLast.EngineSeconds; d > 1e-12 || d < -1e-12 {
		t.Errorf("serial executed %g != serial total %g",
			sLast.EngineExecutedSeconds, sLast.EngineSeconds)
	}
	if sLast.EngineSeconds != last.EngineSeconds {
		t.Errorf("serial basis changed across modes: %g vs %g", sLast.EngineSeconds, last.EngineSeconds)
	}
}
