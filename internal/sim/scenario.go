package sim

import "repro/internal/perf"

// ScenarioNames lists the named initial-condition scenarios of the library
// (internal/ic generators), in the order the documentation presents them.
// "explicit" — caller-supplied bodies — is deliberately absent: it is a JobSpec
// concept, not a generator, and carries no watchdog presets.
func ScenarioNames() []string {
	return []string{"plummer", "hernquist", "cube", "disk", "collision"}
}

// ScenarioTolerances returns the physics-watchdog tolerance band for a named
// scenario, and whether the scenario has one. The near-equilibrium spheres
// (Plummer, Hernquist) get the tight band with the virial check armed: their
// virial ratio should breathe around 0.5, and a leapfrog or Hermite run that
// leaves [0.25, 1.0] is numerically broken, not merely relaxing. The cold cube
// and disk collapse violently and the collision scenario is far from
// equilibrium by construction, so those only get the conservation checks,
// with the energy band widened to ride out close encounters at finite eps.
func ScenarioTolerances(name string) (perf.Tolerances, bool) {
	switch name {
	case "plummer", "hernquist":
		return perf.Tolerances{
			MaxEnergyDrift:   1e-2,
			MaxMomentumDrift: 1e-3,
			VirialMin:        0.25,
			VirialMax:        1.0,
		}, true
	case "cube", "disk":
		return perf.Tolerances{
			MaxEnergyDrift:   5e-2,
			MaxMomentumDrift: 1e-3,
		}, true
	case "collision":
		return perf.Tolerances{
			MaxEnergyDrift:   5e-2,
			MaxMomentumDrift: 5e-3,
		}, true
	}
	return perf.Tolerances{}, false
}

// ScenarioWatchdog returns a fresh watchdog armed with the scenario's
// tolerance band, or nil for scenarios without presets ("explicit", unknown
// names). RunContext installs it when Config.Scenario is set and the caller
// supplied no watchdog of their own.
func ScenarioWatchdog(name string) *perf.Watchdog {
	tol, ok := ScenarioTolerances(name)
	if !ok {
		return nil
	}
	return &perf.Watchdog{Tol: tol}
}
